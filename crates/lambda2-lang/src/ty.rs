//! Types and unification for the λ² object language.
//!
//! The type language is deliberately small: base types `int` and `bool`,
//! the two recursive structures `[τ]` (lists) and `tree τ` (rose trees),
//! first-order function types (functions are never curried in the object
//! language — combinators apply them fully), and type variables used for
//! unknowns such as the element type of an empty list.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A λ² object-language type.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit integers.
    Int,
    /// Booleans.
    Bool,
    /// Homogeneous lists `[τ]`.
    List(Arc<Type>),
    /// Rose trees `tree τ`.
    Tree(Arc<Type>),
    /// Ordered pairs `(pair τ1 τ2)`.
    Pair(Arc<Type>, Arc<Type>),
    /// Uncurried function types `(τ1, …, τn) → τ`.
    Fun(Arc<[Type]>, Arc<Type>),
    /// A unification variable.
    Var(u32),
}

impl Type {
    /// Builds `[elem]`.
    pub fn list(elem: Type) -> Type {
        Type::List(Arc::new(elem))
    }

    /// Builds `tree elem`.
    pub fn tree(elem: Type) -> Type {
        Type::Tree(Arc::new(elem))
    }

    /// Builds `(pair first second)`.
    pub fn pair(first: Type, second: Type) -> Type {
        Type::Pair(Arc::new(first), Arc::new(second))
    }

    /// Builds `(params…) → ret`.
    pub fn fun(params: Vec<Type>, ret: Type) -> Type {
        Type::Fun(params.into(), Arc::new(ret))
    }

    /// `true` if the type mentions no type variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Type::Int | Type::Bool => true,
            Type::List(t) | Type::Tree(t) => t.is_ground(),
            Type::Pair(a, b) => a.is_ground() && b.is_ground(),
            Type::Fun(ps, r) => ps.iter().all(Type::is_ground) && r.is_ground(),
            Type::Var(_) => false,
        }
    }

    /// `true` if the type is first-order (contains no function type).
    pub fn is_first_order(&self) -> bool {
        match self {
            Type::Int | Type::Bool | Type::Var(_) => true,
            Type::List(t) | Type::Tree(t) => t.is_first_order(),
            Type::Pair(a, b) => a.is_first_order() && b.is_first_order(),
            Type::Fun(..) => false,
        }
    }

    /// Collects the free type variables into `out` (in first-occurrence order).
    pub fn vars(&self, out: &mut Vec<u32>) {
        match self {
            Type::Int | Type::Bool => {}
            Type::List(t) | Type::Tree(t) => t.vars(out),
            Type::Pair(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Type::Fun(ps, r) => {
                for p in ps.iter() {
                    p.vars(out);
                }
                r.vars(out);
            }
            Type::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::List(t) => write!(f, "[{t}]"),
            Type::Tree(t) => write!(f, "(tree {t})"),
            Type::Pair(a, b) => write!(f, "(pair {a} {b})"),
            Type::Fun(ps, r) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") -> {r}")
            }
            Type::Var(v) => write!(f, "t{v}"),
        }
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A substitution from type variables to types, with union-find-free
/// path-following resolution (substitutions are tiny in practice).
///
/// # Examples
///
/// ```
/// use lambda2_lang::ty::{Subst, Type};
/// let mut s = Subst::new();
/// let a = s.fresh();
/// s.unify(&Type::list(a.clone()), &Type::list(Type::Int)).unwrap();
/// assert_eq!(s.apply(&a), Type::Int);
/// ```
#[derive(Clone, Default)]
pub struct Subst {
    map: HashMap<u32, Type>,
    next_var: u32,
}

/// Error returned when two types cannot be unified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnifyError {
    /// The first type (after substitution) at the point of mismatch.
    pub left: Type,
    /// The second type (after substitution) at the point of mismatch.
    pub right: Type,
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot unify `{}` with `{}`", self.left, self.right)
    }
}

impl std::error::Error for UnifyError {}

impl Subst {
    /// Creates an empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Returns a fresh type variable unused by this substitution.
    pub fn fresh(&mut self) -> Type {
        let v = self.next_var;
        self.next_var += 1;
        Type::Var(v)
    }

    /// Ensures future [`Subst::fresh`] calls do not collide with any
    /// variable occurring in `ty`.
    pub fn reserve(&mut self, ty: &Type) {
        let mut vs = Vec::new();
        ty.vars(&mut vs);
        for v in vs {
            self.next_var = self.next_var.max(v + 1);
        }
    }

    fn resolve(&self, ty: &Type) -> Type {
        let mut t = ty.clone();
        while let Type::Var(v) = t {
            match self.map.get(&v) {
                Some(next) => t = next.clone(),
                None => break,
            }
        }
        t
    }

    /// Fully applies the substitution to `ty`.
    pub fn apply(&self, ty: &Type) -> Type {
        let t = self.resolve(ty);
        match t {
            Type::Int | Type::Bool | Type::Var(_) => t,
            Type::List(e) => Type::list(self.apply(&e)),
            Type::Tree(e) => Type::tree(self.apply(&e)),
            Type::Pair(a, b) => Type::pair(self.apply(&a), self.apply(&b)),
            Type::Fun(ps, r) => {
                Type::fun(ps.iter().map(|p| self.apply(p)).collect(), self.apply(&r))
            }
        }
    }

    fn occurs(&self, v: u32, ty: &Type) -> bool {
        match self.resolve(ty) {
            Type::Var(w) => w == v,
            Type::Int | Type::Bool => false,
            Type::List(e) | Type::Tree(e) => self.occurs(v, &e),
            Type::Pair(a, b) => self.occurs(v, &a) || self.occurs(v, &b),
            Type::Fun(ps, r) => ps.iter().any(|p| self.occurs(v, p)) || self.occurs(v, &r),
        }
    }

    /// Unifies `a` with `b`, extending the substitution.
    ///
    /// # Errors
    ///
    /// Returns [`UnifyError`] if the types clash or the occurs check fails;
    /// the substitution may be partially extended on failure, so callers
    /// that need transactionality should clone first (hypothesis expansion
    /// does exactly this).
    pub fn unify(&mut self, a: &Type, b: &Type) -> Result<(), UnifyError> {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        match (&ra, &rb) {
            (Type::Var(v), Type::Var(w)) if v == w => Ok(()),
            (Type::Var(v), _) => {
                if self.occurs(*v, &rb) {
                    Err(UnifyError {
                        left: ra,
                        right: rb,
                    })
                } else {
                    self.map.insert(*v, rb);
                    Ok(())
                }
            }
            (_, Type::Var(w)) => {
                if self.occurs(*w, &ra) {
                    Err(UnifyError {
                        left: ra,
                        right: rb,
                    })
                } else {
                    self.map.insert(*w, ra);
                    Ok(())
                }
            }
            (Type::Int, Type::Int) | (Type::Bool, Type::Bool) => Ok(()),
            (Type::List(x), Type::List(y)) | (Type::Tree(x), Type::Tree(y)) => self.unify(x, y),
            (Type::Pair(a1, b1), Type::Pair(a2, b2)) => {
                let (a1, b1) = (a1.clone(), b1.clone());
                let (a2, b2) = (a2.clone(), b2.clone());
                self.unify(&a1, &a2)?;
                self.unify(&b1, &b2)
            }
            (Type::Fun(ps, r), Type::Fun(qs, s)) => {
                if ps.len() != qs.len() {
                    return Err(UnifyError {
                        left: ra.clone(),
                        right: rb.clone(),
                    });
                }
                let (ps, r) = (ps.clone(), r.clone());
                let (qs, s) = (qs.clone(), s.clone());
                for (p, q) in ps.iter().zip(qs.iter()) {
                    self.unify(p, q)?;
                }
                self.unify(&r, &s)
            }
            _ => Err(UnifyError {
                left: ra,
                right: rb,
            }),
        }
    }

    /// Instantiates a type scheme: replaces every variable in `ty` with a
    /// fresh variable (consistently). Used when drawing a polymorphic
    /// operator type from the component library.
    pub fn instantiate(&mut self, ty: &Type) -> Type {
        // Never hand out the scheme's own variable ids as "fresh": a caller
        // mixing scheme types with its own would silently alias them.
        self.reserve(ty);
        let mut vs = Vec::new();
        ty.vars(&mut vs);
        let mapping: HashMap<u32, Type> = vs.into_iter().map(|v| (v, self.fresh())).collect();
        fn go(ty: &Type, m: &HashMap<u32, Type>) -> Type {
            match ty {
                Type::Int | Type::Bool => ty.clone(),
                Type::List(e) => Type::list(go(e, m)),
                Type::Tree(e) => Type::tree(go(e, m)),
                Type::Pair(a, b) => Type::pair(go(a, m), go(b, m)),
                Type::Fun(ps, r) => Type::fun(ps.iter().map(|p| go(p, m)).collect(), go(r, m)),
                Type::Var(v) => m[v].clone(),
            }
        }
        go(ty, &mapping)
    }
}

impl fmt::Debug for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by_key(|(v, _)| **v);
        f.debug_map()
            .entries(entries.iter().map(|(v, t)| (format!("t{v}"), t)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_ground_types() {
        let mut s = Subst::new();
        assert!(s.unify(&Type::Int, &Type::Int).is_ok());
        assert!(s.unify(&Type::Int, &Type::Bool).is_err());
        assert!(s
            .unify(&Type::list(Type::Int), &Type::list(Type::Int))
            .is_ok());
        assert!(s
            .unify(&Type::list(Type::Int), &Type::tree(Type::Int))
            .is_err());
    }

    #[test]
    fn unify_binds_variables_transitively() {
        let mut s = Subst::new();
        let a = s.fresh();
        let b = s.fresh();
        s.unify(&a, &b).unwrap();
        s.unify(&b, &Type::Bool).unwrap();
        assert_eq!(s.apply(&a), Type::Bool);
    }

    #[test]
    fn occurs_check_rejects_infinite_types() {
        let mut s = Subst::new();
        let a = s.fresh();
        let err = s.unify(&a, &Type::list(a.clone()));
        assert!(err.is_err());
    }

    #[test]
    fn unify_pair_types() {
        let mut s = Subst::new();
        let a = s.fresh();
        let b = s.fresh();
        s.unify(
            &Type::pair(a.clone(), b.clone()),
            &Type::pair(Type::Int, Type::list(Type::Bool)),
        )
        .unwrap();
        assert_eq!(s.apply(&a), Type::Int);
        assert_eq!(s.apply(&b), Type::list(Type::Bool));
        assert!(s
            .unify(&Type::pair(Type::Int, Type::Int), &Type::Int)
            .is_err());
    }

    #[test]
    fn unify_function_types() {
        let mut s = Subst::new();
        let a = s.fresh();
        let f1 = Type::fun(vec![Type::Int, a.clone()], a.clone());
        let f2 = Type::fun(vec![Type::Int, Type::Bool], Type::Bool);
        s.unify(&f1, &f2).unwrap();
        assert_eq!(s.apply(&a), Type::Bool);

        let wrong_arity = Type::fun(vec![Type::Int], Type::Bool);
        assert!(s.unify(&f1, &wrong_arity).is_err());
    }

    #[test]
    fn instantiate_renames_consistently() {
        let mut s = Subst::new();
        let scheme = Type::fun(vec![Type::Var(0), Type::Var(0)], Type::Var(1));
        let inst = s.instantiate(&scheme);
        match inst {
            Type::Fun(ps, r) => {
                assert_eq!(ps[0], ps[1]);
                assert_ne!(ps[0], *r);
                assert_ne!(ps[0], Type::Var(0)); // fresh, not the scheme var
            }
            other => panic!("expected function type, got {other}"),
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::list(Type::Int).to_string(), "[int]");
        assert_eq!(Type::tree(Type::Bool).to_string(), "(tree bool)");
        assert_eq!(
            Type::fun(vec![Type::Int, Type::Int], Type::Bool).to_string(),
            "(int int) -> bool"
        );
    }

    #[test]
    fn reserve_prevents_collisions() {
        let mut s = Subst::new();
        s.reserve(&Type::list(Type::Var(7)));
        let f = s.fresh();
        assert_eq!(f, Type::Var(8));
    }

    #[test]
    fn is_ground_and_first_order() {
        assert!(Type::list(Type::Int).is_ground());
        assert!(!Type::list(Type::Var(0)).is_ground());
        assert!(Type::tree(Type::Int).is_first_order());
        assert!(!Type::fun(vec![Type::Int], Type::Int).is_first_order());
    }
}
