//! Runtime values of the λ² object language.
//!
//! The language is first-order at its example boundary: problem inputs and
//! outputs are integers, booleans, homogeneous lists, and variadic ("rose")
//! trees, nested arbitrarily. Functions ([`Value::Closure`]) and first-class
//! combinator references ([`Value::Comb`]) only occur transiently during
//! evaluation of higher-order combinators.

use std::fmt;
use std::sync::Arc;

use crate::ast::{Comb, Expr};
use crate::env::Env;
use crate::symbol::Symbol;
use crate::ty::Type;

/// A runtime value.
///
/// Lists and trees share their spines via [`Arc`], so cloning a value is O(1);
/// this matters because deduction rules decompose example values heavily.
#[derive(Clone)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A homogeneous list.
    List(Arc<Vec<Value>>),
    /// A variadic tree (possibly empty).
    Tree(Tree),
    /// An ordered pair.
    Pair(Arc<(Value, Value)>),
    /// A lambda closed over an environment. Never appears in examples.
    Closure(Arc<Closure>),
    /// A first-class reference to a built-in combinator.
    Comb(Comb),
}

/// A lambda value: parameters, body, and captured environment.
pub struct Closure {
    /// Binder names, in order.
    pub params: Arc<[Symbol]>,
    /// The function body.
    pub body: Arc<Expr>,
    /// The captured environment.
    pub env: Env,
}

/// A variadic ("rose") tree: either empty (`{}`) or a node `{v, c1 … cn}`
/// carrying a value and zero or more child trees.
///
/// # Examples
///
/// ```
/// use lambda2_lang::value::{Tree, Value};
/// let leaf = Tree::node(Value::Int(2), vec![]);
/// let t = Tree::node(Value::Int(1), vec![leaf.clone(), leaf]);
/// assert_eq!(t.size(), 3);
/// assert_eq!(t.to_string(), "{1 {2} {2}}");
/// ```
#[derive(Clone)]
pub struct Tree(Option<Arc<TreeNode>>);

/// An interior node of a [`Tree`].
pub struct TreeNode {
    /// The value stored at this node.
    pub value: Value,
    /// The node's children, left to right.
    pub children: Vec<Tree>,
}

impl Tree {
    /// The empty tree `{}`.
    pub fn empty() -> Tree {
        Tree(None)
    }

    /// Builds a node `{value, children…}`.
    pub fn node(value: Value, children: Vec<Tree>) -> Tree {
        Tree(Some(Arc::new(TreeNode { value, children })))
    }

    /// Returns `true` for the empty tree.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Returns the root node, or `None` for the empty tree.
    pub fn root(&self) -> Option<&TreeNode> {
        self.0.as_deref()
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self.root() {
            None => 0,
            Some(n) => 1 + n.children.iter().map(Tree::size).sum::<usize>(),
        }
    }

    /// Height of the tree (empty tree has height 0, a leaf height 1).
    pub fn height(&self) -> usize {
        match self.root() {
            None => 0,
            Some(n) => 1 + n.children.iter().map(Tree::height).max().unwrap_or(0),
        }
    }

    /// Returns `true` if `self` and `other` have identical shape
    /// (ignoring node values). Used by the `mapt` deduction rule.
    pub fn same_shape(&self, other: &Tree) -> bool {
        match (self.root(), other.root()) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.children.len() == b.children.len()
                    && a.children
                        .iter()
                        .zip(&b.children)
                        .all(|(x, y)| x.same_shape(y))
            }
            _ => false,
        }
    }

    /// Pre-order iterator over node values.
    pub fn values(&self) -> Vec<&Value> {
        let mut out = Vec::with_capacity(self.size());
        fn go<'a>(t: &'a Tree, out: &mut Vec<&'a Value>) {
            if let Some(n) = t.root() {
                out.push(&n.value);
                for c in &n.children {
                    go(c, out);
                }
            }
        }
        go(self, &mut out);
        out
    }
}

impl Value {
    /// Convenience constructor for list values.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// The empty list `[]`.
    pub fn nil() -> Value {
        Value::list(Vec::new())
    }

    /// Returns the contained integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the contained boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the contained list, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(xs) => Some(xs),
            _ => None,
        }
    }

    /// Returns the contained tree, if this is a `Tree`.
    pub fn as_tree(&self) -> Option<&Tree> {
        match self {
            Value::Tree(t) => Some(t),
            _ => None,
        }
    }

    /// Convenience constructor for pair values.
    pub fn pair(first: Value, second: Value) -> Value {
        Value::Pair(Arc::new((first, second)))
    }

    /// Returns the components, if this is a `Pair`.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(p) => Some((&p.0, &p.1)),
            _ => None,
        }
    }

    /// `true` if the value contains no closures or combinator references,
    /// i.e. it could appear in an input-output example.
    pub fn is_first_order(&self) -> bool {
        match self {
            Value::Int(_) | Value::Bool(_) => true,
            Value::List(xs) => xs.iter().all(Value::is_first_order),
            Value::Tree(t) => t.values().into_iter().all(Value::is_first_order),
            Value::Pair(p) => p.0.is_first_order() && p.1.is_first_order(),
            Value::Closure(_) | Value::Comb(_) => false,
        }
    }

    /// Infers the runtime type of a first-order value.
    ///
    /// Empty lists and trees produce fresh-variable element types via
    /// `fresh`, since their element type is unconstrained.
    pub fn type_of(&self, fresh: &mut dyn FnMut() -> Type) -> Type {
        match self {
            Value::Int(_) => Type::Int,
            Value::Bool(_) => Type::Bool,
            Value::List(xs) => match xs.first() {
                Some(x) => Type::list(x.type_of(fresh)),
                None => Type::list(fresh()),
            },
            Value::Tree(t) => match t.root() {
                Some(n) => Type::tree(n.value.type_of(fresh)),
                None => Type::tree(fresh()),
            },
            Value::Pair(p) => Type::pair(p.0.type_of(fresh), p.1.type_of(fresh)),
            Value::Closure(_) | Value::Comb(_) => fresh(),
        }
    }

    /// Structural size of the value (number of scalar constituents).
    /// Used by workload generators and statistics.
    pub fn size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Bool(_) => 1,
            Value::List(xs) => 1 + xs.iter().map(Value::size).sum::<usize>(),
            Value::Tree(t) => 1 + t.values().iter().map(|v| v.size()).sum::<usize>(),
            Value::Pair(p) => 1 + p.0.size() + p.1.size(),
            Value::Closure(_) | Value::Comb(_) => 1,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Tree(a), Value::Tree(b)) => a == b,
            (Value::Pair(a), Value::Pair(b)) => a.0 == b.0 && a.1 == b.1,
            // Closures compare by identity: good enough for the synthesizer,
            // which never compares higher-order values structurally.
            (Value::Closure(a), Value::Closure(b)) => Arc::ptr_eq(a, b),
            (Value::Comb(a), Value::Comb(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(n) => {
                state.write_u8(0);
                n.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::List(xs) => {
                state.write_u8(2);
                state.write_usize(xs.len());
                for x in xs.iter() {
                    x.hash(state);
                }
            }
            Value::Tree(t) => {
                state.write_u8(3);
                t.hash(state);
            }
            Value::Pair(p) => {
                state.write_u8(6);
                p.0.hash(state);
                p.1.hash(state);
            }
            Value::Closure(c) => {
                state.write_u8(4);
                state.write_usize(Arc::as_ptr(c) as usize);
            }
            Value::Comb(c) => {
                state.write_u8(5);
                (*c as u8).hash(state);
            }
        }
    }
}

impl PartialEq for Tree {
    fn eq(&self, other: &Tree) -> bool {
        match (self.root(), other.root()) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.value == b.value
                    && a.children.len() == b.children.len()
                    && a.children.iter().zip(&b.children).all(|(x, y)| x == y)
            }
            _ => false,
        }
    }
}

impl Eq for Tree {}

impl std::hash::Hash for Tree {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self.root() {
            None => state.write_u8(0),
            Some(n) => {
                state.write_u8(1);
                n.value.hash(state);
                state.write_usize(n.children.len());
                for c in &n.children {
                    c.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Tree(t) => write!(f, "{t}"),
            Value::Pair(p) => write!(f, "(pair {} {})", p.0, p.1),
            Value::Closure(_) => write!(f, "<closure>"),
            Value::Comb(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.root() {
            None => write!(f, "{{}}"),
            Some(n) => {
                write!(f, "{{{}", n.value)?;
                for c in &n.children {
                    write!(f, " {c}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Value {
        Value::list(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(ns: &[i64]) -> Value {
        ns.iter().copied().map(Value::Int).collect()
    }

    #[test]
    fn display_round_trips_shapes() {
        assert_eq!(ints(&[1, 2, 3]).to_string(), "[1 2 3]");
        assert_eq!(Value::nil().to_string(), "[]");
        let t = Tree::node(
            Value::Int(1),
            vec![Tree::node(Value::Int(2), vec![]), Tree::empty()],
        );
        assert_eq!(Value::Tree(t).to_string(), "{1 {2} {}}");
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(ints(&[1, 2]), ints(&[1, 2]));
        assert_ne!(ints(&[1, 2]), ints(&[2, 1]));
        assert_ne!(Value::Int(1), Value::Bool(true));
        let a = Tree::node(Value::Int(5), vec![Tree::empty()]);
        let b = Tree::node(Value::Int(5), vec![Tree::empty()]);
        assert_eq!(Value::Tree(a), Value::Tree(b));
    }

    #[test]
    fn tree_metrics() {
        let leaf = |n| Tree::node(Value::Int(n), vec![]);
        let t = Tree::node(
            Value::Int(0),
            vec![leaf(1), Tree::node(Value::Int(2), vec![leaf(3)])],
        );
        assert_eq!(t.size(), 4);
        assert_eq!(t.height(), 3);
        assert_eq!(Tree::empty().size(), 0);
        assert_eq!(Tree::empty().height(), 0);
        assert_eq!(
            t.values()
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn same_shape_ignores_values() {
        let a = Tree::node(Value::Int(1), vec![Tree::node(Value::Int(2), vec![])]);
        let b = Tree::node(Value::Int(9), vec![Tree::node(Value::Int(8), vec![])]);
        let c = Tree::node(Value::Int(1), vec![]);
        assert!(a.same_shape(&b));
        assert!(!a.same_shape(&c));
        assert!(Tree::empty().same_shape(&Tree::empty()));
        assert!(!Tree::empty().same_shape(&c));
    }

    #[test]
    fn type_of_first_order_values() {
        let mut fresh = || Type::Var(99);
        assert_eq!(ints(&[1]).type_of(&mut fresh), Type::list(Type::Int));
        assert_eq!(Value::nil().type_of(&mut fresh), Type::list(Type::Var(99)));
        assert_eq!(Value::Bool(true).type_of(&mut fresh), Type::Bool);
        let t = Value::Tree(Tree::node(Value::Bool(false), vec![]));
        assert_eq!(t.type_of(&mut fresh), Type::tree(Type::Bool));
    }

    #[test]
    fn is_first_order() {
        assert!(ints(&[1, 2]).is_first_order());
        assert!(Value::Tree(Tree::empty()).is_first_order());
        assert!(!Value::Comb(Comb::Map).is_first_order());
    }

    #[test]
    fn value_size() {
        assert_eq!(Value::Int(3).size(), 1);
        assert_eq!(ints(&[1, 2, 3]).size(), 4);
        let nested = Value::list(vec![ints(&[1]), ints(&[])]);
        assert_eq!(nested.size(), 4);
    }
}
