//! Typing of the higher-order combinators.
//!
//! The operational semantics of the combinators live in [`crate::eval`],
//! which needs mutual recursion with the core evaluator; this module pins
//! down their type schemes, shared by type inference, hypothesis expansion
//! and the enumerator.

use crate::ast::Comb;
use crate::ty::Type;

impl Comb {
    /// The combinator's type scheme, with `t0`/`t1` implicitly quantified:
    ///
    /// ```text
    /// map    : ((a) -> b, [a])                 -> [b]
    /// filter : ((a) -> bool, [a])              -> [a]
    /// foldl  : ((b, a) -> b, b, [a])           -> b
    /// foldr  : ((a, b) -> b, b, [a])           -> b
    /// recl   : ((a, [a], b) -> b, b, [a])      -> b
    /// mapt   : ((a) -> b, tree a)              -> tree b
    /// foldt  : ((a, [b]) -> b, b, tree a)      -> b
    /// ```
    pub fn type_scheme(self) -> Type {
        let a = || Type::Var(0);
        let b = || Type::Var(1);
        match self {
            Comb::Map => Type::fun(
                vec![Type::fun(vec![a()], b()), Type::list(a())],
                Type::list(b()),
            ),
            Comb::Filter => Type::fun(
                vec![Type::fun(vec![a()], Type::Bool), Type::list(a())],
                Type::list(a()),
            ),
            Comb::Foldl => Type::fun(
                vec![Type::fun(vec![b(), a()], b()), b(), Type::list(a())],
                b(),
            ),
            Comb::Foldr => Type::fun(
                vec![Type::fun(vec![a(), b()], b()), b(), Type::list(a())],
                b(),
            ),
            Comb::Recl => Type::fun(
                vec![
                    Type::fun(vec![a(), Type::list(a()), b()], b()),
                    b(),
                    Type::list(a()),
                ],
                b(),
            ),
            Comb::Mapt => Type::fun(
                vec![Type::fun(vec![a()], b()), Type::tree(a())],
                Type::tree(b()),
            ),
            Comb::Foldt => Type::fun(
                vec![
                    Type::fun(vec![a(), Type::list(b())], b()),
                    b(),
                    Type::tree(a()),
                ],
                b(),
            ),
        }
    }

    /// Index of the collection argument (the list or tree being traversed).
    pub fn collection_index(self) -> usize {
        self.arity() - 1
    }

    /// Index of the initial-value argument, for combinators that have one.
    pub fn init_index(self) -> Option<usize> {
        match self {
            Comb::Foldl | Comb::Foldr | Comb::Recl | Comb::Foldt => Some(1),
            Comb::Map | Comb::Filter | Comb::Mapt => None,
        }
    }

    /// `true` if the combinator traverses a tree rather than a list.
    pub fn is_tree(self) -> bool {
        matches!(self, Comb::Mapt | Comb::Foldt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_match_arity() {
        for c in Comb::ALL {
            match c.type_scheme() {
                Type::Fun(params, _) => {
                    assert_eq!(params.len(), c.arity(), "{c}");
                    match &params[0] {
                        Type::Fun(fparams, _) => assert_eq!(fparams.len(), c.fun_arity(), "{c}"),
                        other => panic!("first arg of {c} is not a function: {other}"),
                    }
                }
                other => panic!("scheme of {c} is not a function: {other}"),
            }
        }
    }

    #[test]
    fn collection_argument_is_last() {
        for c in Comb::ALL {
            let Type::Fun(params, _) = c.type_scheme() else {
                unreachable!()
            };
            let coll = &params[c.collection_index()];
            assert!(
                matches!(coll, Type::List(_) | Type::Tree(_)),
                "{c} collection arg: {coll}"
            );
        }
    }

    #[test]
    fn init_index_only_on_folds() {
        assert_eq!(Comb::Map.init_index(), None);
        assert_eq!(Comb::Filter.init_index(), None);
        assert_eq!(Comb::Mapt.init_index(), None);
        for c in [Comb::Foldl, Comb::Foldr, Comb::Recl, Comb::Foldt] {
            assert_eq!(c.init_index(), Some(1));
        }
    }
}
