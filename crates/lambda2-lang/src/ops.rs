//! Semantics and typing of the first-order operators.

use std::sync::Arc;

use crate::ast::Op;
use crate::error::EvalError;
use crate::ty::Type;
use crate::value::{Tree, Value};

impl Op {
    /// The operator's type *scheme*. Variables `t0`, `t1` are implicitly
    /// universally quantified and must be instantiated (see
    /// [`crate::ty::Subst::instantiate`]) before unification.
    pub fn type_scheme(self) -> Type {
        let a = || Type::Var(0);
        let b = || Type::Var(1);
        match self {
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                Type::fun(vec![Type::Int, Type::Int], Type::Int)
            }
            Op::Lt | Op::Le | Op::Gt | Op::Ge => Type::fun(vec![Type::Int, Type::Int], Type::Bool),
            Op::Eq | Op::Neq => Type::fun(vec![a(), a()], Type::Bool),
            Op::And | Op::Or => Type::fun(vec![Type::Bool, Type::Bool], Type::Bool),
            Op::Not => Type::fun(vec![Type::Bool], Type::Bool),
            Op::Cons => Type::fun(vec![a(), Type::list(a())], Type::list(a())),
            Op::Car | Op::Last => Type::fun(vec![Type::list(a())], a()),
            Op::Cdr => Type::fun(vec![Type::list(a())], Type::list(a())),
            Op::IsEmpty => Type::fun(vec![Type::list(a())], Type::Bool),
            Op::Cat => Type::fun(vec![Type::list(a()), Type::list(a())], Type::list(a())),
            Op::Member => Type::fun(vec![a(), Type::list(a())], Type::Bool),
            Op::TreeMake => Type::fun(vec![a(), Type::list(Type::tree(a()))], Type::tree(a())),
            Op::TreeValue => Type::fun(vec![Type::tree(a())], a()),
            Op::TreeChildren => Type::fun(vec![Type::tree(a())], Type::list(Type::tree(a()))),
            Op::IsEmptyTree => Type::fun(vec![Type::tree(a())], Type::Bool),
            Op::IsLeaf => Type::fun(vec![Type::tree(a())], Type::Bool),
            Op::MkPair => Type::fun(vec![a(), b()], Type::pair(a(), b())),
            Op::Fst => Type::fun(vec![Type::pair(a(), b())], a()),
            Op::Snd => Type::fun(vec![Type::pair(a(), b())], b()),
        }
    }

    /// Applies the operator to fully evaluated arguments.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on shape mismatches, division by zero, and
    /// partial operations applied outside their domain (`car []`,
    /// `value {}`, …). These are routine during enumeration.
    pub fn apply(self, args: &[Value]) -> Result<Value, EvalError> {
        if args.len() != self.arity() {
            return Err(EvalError::ArityMismatch);
        }
        let int = |v: &Value| v.as_int().ok_or(EvalError::TypeMismatch);
        let boolean = |v: &Value| v.as_bool().ok_or(EvalError::TypeMismatch);
        match self {
            Op::Add => Ok(Value::Int(int(&args[0])?.wrapping_add(int(&args[1])?))),
            Op::Sub => Ok(Value::Int(int(&args[0])?.wrapping_sub(int(&args[1])?))),
            Op::Mul => Ok(Value::Int(int(&args[0])?.wrapping_mul(int(&args[1])?))),
            Op::Div => {
                let (a, b) = (int(&args[0])?, int(&args[1])?);
                if b == 0 {
                    Err(EvalError::DivByZero)
                } else {
                    Ok(Value::Int(a.wrapping_div(b)))
                }
            }
            Op::Mod => {
                let (a, b) = (int(&args[0])?, int(&args[1])?);
                if b == 0 {
                    Err(EvalError::DivByZero)
                } else {
                    Ok(Value::Int(a.wrapping_rem(b)))
                }
            }
            Op::Lt => Ok(Value::Bool(int(&args[0])? < int(&args[1])?)),
            Op::Le => Ok(Value::Bool(int(&args[0])? <= int(&args[1])?)),
            Op::Gt => Ok(Value::Bool(int(&args[0])? > int(&args[1])?)),
            Op::Ge => Ok(Value::Bool(int(&args[0])? >= int(&args[1])?)),
            Op::Eq => Ok(Value::Bool(first_order_eq(&args[0], &args[1])?)),
            Op::Neq => Ok(Value::Bool(!first_order_eq(&args[0], &args[1])?)),
            Op::And => Ok(Value::Bool(boolean(&args[0])? && boolean(&args[1])?)),
            Op::Or => Ok(Value::Bool(boolean(&args[0])? || boolean(&args[1])?)),
            Op::Not => Ok(Value::Bool(!boolean(&args[0])?)),
            Op::Cons => {
                let xs = args[1].as_list().ok_or(EvalError::TypeMismatch)?;
                let mut out = Vec::with_capacity(xs.len() + 1);
                out.push(args[0].clone());
                out.extend_from_slice(xs);
                Ok(Value::list(out))
            }
            Op::Car => {
                let xs = args[0].as_list().ok_or(EvalError::TypeMismatch)?;
                xs.first().cloned().ok_or(EvalError::EmptyList)
            }
            Op::Cdr => {
                let xs = args[0].as_list().ok_or(EvalError::TypeMismatch)?;
                if xs.is_empty() {
                    Err(EvalError::EmptyList)
                } else {
                    Ok(Value::list(xs[1..].to_vec()))
                }
            }
            Op::Last => {
                let xs = args[0].as_list().ok_or(EvalError::TypeMismatch)?;
                xs.last().cloned().ok_or(EvalError::EmptyList)
            }
            Op::IsEmpty => {
                let xs = args[0].as_list().ok_or(EvalError::TypeMismatch)?;
                Ok(Value::Bool(xs.is_empty()))
            }
            Op::Cat => {
                let xs = args[0].as_list().ok_or(EvalError::TypeMismatch)?;
                let ys = args[1].as_list().ok_or(EvalError::TypeMismatch)?;
                let mut out = Vec::with_capacity(xs.len() + ys.len());
                out.extend_from_slice(xs);
                out.extend_from_slice(ys);
                Ok(Value::list(out))
            }
            Op::Member => {
                let xs = args[1].as_list().ok_or(EvalError::TypeMismatch)?;
                if !args[0].is_first_order() {
                    return Err(EvalError::TypeMismatch);
                }
                Ok(Value::Bool(xs.contains(&args[0])))
            }
            Op::TreeMake => {
                let cs = args[1].as_list().ok_or(EvalError::TypeMismatch)?;
                let children = cs
                    .iter()
                    .map(|c| c.as_tree().cloned().ok_or(EvalError::TypeMismatch))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Value::Tree(Tree::node(args[0].clone(), children)))
            }
            Op::TreeValue => {
                let t = args[0].as_tree().ok_or(EvalError::TypeMismatch)?;
                t.root()
                    .map(|n| n.value.clone())
                    .ok_or(EvalError::EmptyTree)
            }
            Op::TreeChildren => {
                let t = args[0].as_tree().ok_or(EvalError::TypeMismatch)?;
                let n = t.root().ok_or(EvalError::EmptyTree)?;
                Ok(Value::List(Arc::new(
                    n.children.iter().cloned().map(Value::Tree).collect(),
                )))
            }
            Op::IsEmptyTree => {
                let t = args[0].as_tree().ok_or(EvalError::TypeMismatch)?;
                Ok(Value::Bool(t.is_empty()))
            }
            Op::IsLeaf => {
                let t = args[0].as_tree().ok_or(EvalError::TypeMismatch)?;
                let n = t.root().ok_or(EvalError::EmptyTree)?;
                Ok(Value::Bool(n.children.is_empty()))
            }
            Op::MkPair => {
                if !args[0].is_first_order() || !args[1].is_first_order() {
                    return Err(EvalError::TypeMismatch);
                }
                Ok(Value::pair(args[0].clone(), args[1].clone()))
            }
            Op::Fst => {
                let (a, _) = args[0].as_pair().ok_or(EvalError::TypeMismatch)?;
                Ok(a.clone())
            }
            Op::Snd => {
                let (_, b) = args[0].as_pair().ok_or(EvalError::TypeMismatch)?;
                Ok(b.clone())
            }
        }
    }
}

/// Structural equality restricted to first-order values; comparing a
/// closure is a type error rather than silently using pointer identity.
fn first_order_eq(a: &Value, b: &Value) -> Result<bool, EvalError> {
    match (a, b) {
        (Value::Closure(_), _)
        | (_, Value::Closure(_))
        | (Value::Comb(_), _)
        | (_, Value::Comb(_)) => Err(EvalError::TypeMismatch),
        _ => Ok(a == b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(ns: &[i64]) -> Value {
        ns.iter().copied().map(Value::Int).collect()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            Op::Add.apply(&[Value::Int(2), Value::Int(3)]),
            Ok(Value::Int(5))
        );
        assert_eq!(
            Op::Sub.apply(&[Value::Int(2), Value::Int(3)]),
            Ok(Value::Int(-1))
        );
        assert_eq!(
            Op::Mul.apply(&[Value::Int(4), Value::Int(3)]),
            Ok(Value::Int(12))
        );
        assert_eq!(
            Op::Div.apply(&[Value::Int(7), Value::Int(2)]),
            Ok(Value::Int(3))
        );
        assert_eq!(
            Op::Mod.apply(&[Value::Int(7), Value::Int(2)]),
            Ok(Value::Int(1))
        );
        assert_eq!(
            Op::Div.apply(&[Value::Int(1), Value::Int(0)]),
            Err(EvalError::DivByZero)
        );
        assert_eq!(
            Op::Add.apply(&[Value::Bool(true), Value::Int(0)]),
            Err(EvalError::TypeMismatch)
        );
    }

    #[test]
    fn comparisons_and_booleans() {
        assert_eq!(
            Op::Lt.apply(&[Value::Int(1), Value::Int(2)]),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            Op::Ge.apply(&[Value::Int(2), Value::Int(2)]),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            Op::And.apply(&[Value::Bool(true), Value::Bool(false)]),
            Ok(Value::Bool(false))
        );
        assert_eq!(Op::Not.apply(&[Value::Bool(false)]), Ok(Value::Bool(true)));
    }

    #[test]
    fn equality_is_structural_on_any_first_order_type() {
        assert_eq!(
            Op::Eq.apply(&[ints(&[1, 2]), ints(&[1, 2])]),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            Op::Neq.apply(&[Value::Int(1), Value::Int(2)]),
            Ok(Value::Bool(true))
        );
        // Mixed shapes are unequal, not errors (the type system rules them
        // out anyway, but evaluation must stay total on first-order values).
        assert_eq!(
            Op::Eq.apply(&[Value::Int(1), Value::Bool(true)]),
            Ok(Value::Bool(false))
        );
    }

    #[test]
    fn list_operations() {
        assert_eq!(
            Op::Cons.apply(&[Value::Int(1), ints(&[2, 3])]),
            Ok(ints(&[1, 2, 3]))
        );
        assert_eq!(Op::Car.apply(&[ints(&[9, 8])]), Ok(Value::Int(9)));
        assert_eq!(Op::Cdr.apply(&[ints(&[9, 8])]), Ok(ints(&[8])));
        assert_eq!(Op::Last.apply(&[ints(&[9, 8])]), Ok(Value::Int(8)));
        assert_eq!(Op::Car.apply(&[Value::nil()]), Err(EvalError::EmptyList));
        assert_eq!(Op::Cdr.apply(&[Value::nil()]), Err(EvalError::EmptyList));
        assert_eq!(Op::IsEmpty.apply(&[Value::nil()]), Ok(Value::Bool(true)));
        assert_eq!(
            Op::Cat.apply(&[ints(&[1]), ints(&[2, 3])]),
            Ok(ints(&[1, 2, 3]))
        );
        assert_eq!(
            Op::Member.apply(&[Value::Int(2), ints(&[1, 2])]),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            Op::Member.apply(&[Value::Int(5), ints(&[1, 2])]),
            Ok(Value::Bool(false))
        );
    }

    #[test]
    fn tree_operations() {
        let leaf = Value::Tree(Tree::node(Value::Int(7), vec![]));
        let made = Op::TreeMake
            .apply(&[Value::Int(1), Value::list(vec![leaf.clone()])])
            .unwrap();
        assert_eq!(made.to_string(), "{1 {7}}");
        assert_eq!(
            Op::TreeValue.apply(std::slice::from_ref(&made)),
            Ok(Value::Int(1))
        );
        assert_eq!(
            Op::TreeChildren.apply(std::slice::from_ref(&made)),
            Ok(Value::list(vec![leaf.clone()]))
        );
        assert_eq!(Op::IsLeaf.apply(&[leaf]), Ok(Value::Bool(true)));
        assert_eq!(Op::IsLeaf.apply(&[made]), Ok(Value::Bool(false)));
        let empty = Value::Tree(Tree::empty());
        assert_eq!(
            Op::IsEmptyTree.apply(std::slice::from_ref(&empty)),
            Ok(Value::Bool(true))
        );
        assert_eq!(Op::TreeValue.apply(&[empty]), Err(EvalError::EmptyTree));
    }

    #[test]
    fn pair_operations() {
        let p = Op::MkPair
            .apply(&[Value::Int(3), Value::Bool(true)])
            .unwrap();
        assert_eq!(p.to_string(), "(pair 3 true)");
        assert_eq!(Op::Fst.apply(std::slice::from_ref(&p)), Ok(Value::Int(3)));
        assert_eq!(Op::Snd.apply(&[p]), Ok(Value::Bool(true)));
        assert_eq!(
            Op::Fst.apply(&[Value::Int(1)]),
            Err(EvalError::TypeMismatch)
        );
        // Pairs participate in structural equality.
        let a = Value::pair(Value::Int(1), Value::Int(2));
        let b = Value::pair(Value::Int(1), Value::Int(2));
        assert_eq!(Op::Eq.apply(&[a, b]), Ok(Value::Bool(true)));
    }

    #[test]
    fn arity_is_enforced() {
        assert_eq!(
            Op::Add.apply(&[Value::Int(1)]),
            Err(EvalError::ArityMismatch)
        );
    }

    #[test]
    fn type_schemes_have_matching_arity() {
        for op in Op::ALL {
            match op.type_scheme() {
                Type::Fun(params, _) => assert_eq!(params.len(), op.arity(), "{op}"),
                other => panic!("scheme of {op} is not a function: {other}"),
            }
        }
    }
}
