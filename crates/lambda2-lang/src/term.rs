//! Arena-allocated, hash-consed closed terms.
//!
//! The enumerator's term stores hold millions of small first-order
//! expressions (literals, variables, operator applications, conditionals).
//! Building each as an [`Expr`] costs one heap allocation per node plus
//! pointer-chasing on every comparison. A [`TermArena`] instead interns
//! every node once — structurally identical subterms share a single
//! [`TermId`] — so:
//!
//! * equality is an O(1) `u32` compare,
//! * structural dedup happens at construction (interning an already-seen
//!   node returns the existing id),
//! * stores index terms by dense `u32` ids instead of `Arc` pointers, and
//! * ids are `Copy + Send`, so stores can be shared across worker threads.
//!
//! The arena is append-only: ids are never invalidated. Re-interning the
//! same content always yields the same id, so arenas rebuilt after a
//! budget rollback re-converge deterministically.
//!
//! Only the first-order fragment the enumerator actually builds is
//! represented ([`Node`]); lambdas, combinator applications, and holes
//! stay in [`Expr`] form, which the synthesizer's hypothesis layer uses.
//! [`TermArena::extract`] materializes an id back into a shared
//! [`Arc<Expr>`] (memoized, with maximal subtree sharing) at the points
//! where the synthesizer needs a real expression — hole fills and final
//! programs — which is rare compared to construction and comparison.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::{Expr, Op};
use crate::symbol::Symbol;
use crate::value::Value;

/// Dense index of an interned term in a [`TermArena`].
///
/// Ids are only meaningful within the arena that produced them; comparing
/// ids from different arenas is a logic error the type system does not
/// catch (stores own their arenas, so ids never travel between them).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned node: the first-order fragment of [`Expr`] with child
/// subtrees replaced by [`TermId`]s.
///
/// Operators are split by arity so a node is a flat, fixed-size value —
/// no boxed child slice, no indirection.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// A literal first-order value.
    Lit(Value),
    /// A variable reference.
    Var(Symbol),
    /// `(if c t e)`.
    If(TermId, TermId, TermId),
    /// A unary operator application.
    Op1(Op, TermId),
    /// A binary operator application.
    Op2(Op, TermId, TermId),
}

/// An append-only hash-consing arena for first-order terms.
#[derive(Debug, Default)]
pub struct TermArena {
    nodes: Vec<Node>,
    seen: HashMap<Node, TermId>,
    /// Memoized extraction cache: id → materialized expression. Interior
    /// mutability keeps [`TermArena::extract`] callable through `&self`;
    /// the cell never escapes, so the arena stays `Send`.
    extracted: std::cell::RefCell<HashMap<TermId, Arc<Expr>>>,
}

impl TermArena {
    /// An empty arena.
    pub fn new() -> TermArena {
        TermArena::default()
    }

    /// Number of distinct interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns `node`, returning the id of the structurally identical
    /// node already present or a fresh id for a new one.
    pub fn intern(&mut self, node: Node) -> TermId {
        if let Some(&id) = self.seen.get(&node) {
            #[cfg(feature = "check-invariants")]
            assert_eq!(
                self.nodes[id.index()],
                node,
                "hash-cons hit must be structurally identical"
            );
            return id;
        }
        let id = TermId(u32::try_from(self.nodes.len()).expect("term arena overflowed u32 ids"));
        self.nodes.push(node.clone());
        self.seen.insert(node, id);
        id
    }

    /// The node behind `id`.
    #[inline]
    pub fn node(&self, id: TermId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of AST nodes in the term rooted at `id` (matches
    /// [`Expr::size`] on the extracted expression).
    pub fn size(&self, id: TermId) -> usize {
        match self.node(id) {
            Node::Lit(_) | Node::Var(_) => 1,
            Node::If(c, t, e) => 1 + self.size(*c) + self.size(*t) + self.size(*e),
            Node::Op1(_, a) => 1 + self.size(*a),
            Node::Op2(_, a, b) => 1 + self.size(*a) + self.size(*b),
        }
    }

    /// Materializes `id` as a shared expression.
    ///
    /// Memoized per arena: each interned node is converted at most once,
    /// and repeated subtrees share one `Arc<Expr>` in the result.
    pub fn extract(&self, id: TermId) -> Arc<Expr> {
        if let Some(e) = self.extracted.borrow().get(&id) {
            return e.clone();
        }
        let expr = Arc::new(match self.node(id) {
            Node::Lit(v) => Expr::Lit(v.clone()),
            Node::Var(x) => Expr::Var(*x),
            Node::If(c, t, e) => Expr::If(self.extract(*c), self.extract(*t), self.extract(*e)),
            Node::Op1(op, a) => Expr::Op(*op, [(*self.extract(*a)).clone()].into()),
            Node::Op2(op, a, b) => Expr::Op(
                *op,
                [(*self.extract(*a)).clone(), (*self.extract(*b)).clone()].into(),
            ),
        });
        self.extracted.borrow_mut().insert(id, expr.clone());
        expr
    }

    /// Interns an already-built expression, returning `None` when it
    /// falls outside the first-order fragment (lambda, combinator
    /// application, or hole).
    pub fn intern_expr(&mut self, expr: &Expr) -> Option<TermId> {
        let node = match expr {
            Expr::Lit(v) => Node::Lit(v.clone()),
            Expr::Var(x) => Node::Var(*x),
            Expr::If(c, t, e) => {
                let c = self.intern_expr(c)?;
                let t = self.intern_expr(t)?;
                let e = self.intern_expr(e)?;
                Node::If(c, t, e)
            }
            Expr::Op(op, args) => match args.len() {
                1 => Node::Op1(*op, self.intern_expr(&args[0])?),
                2 => {
                    let a = self.intern_expr(&args[0])?;
                    let b = self.intern_expr(&args[1])?;
                    Node::Op2(*op, a, b)
                }
                _ => return None,
            },
            Expr::Lambda(..) | Expr::App(..) | Expr::Comb(_) | Expr::Hole(_) => return None,
        };
        Some(self.intern(node))
    }

    /// Renders `id` without materializing an [`Expr`] (test/debug aid).
    pub fn render(&self, id: TermId) -> String {
        self.extract(id).to_string()
    }

    /// Asserts the extraction round-trip: re-interning the extracted
    /// expression of every term yields the same id. Compiled in only
    /// under `check-invariants`.
    #[cfg(feature = "check-invariants")]
    pub fn assert_roundtrip(&mut self, id: TermId) {
        let expr = self.extract(id);
        let back = self
            .intern_expr(&expr)
            .expect("extracted term must stay in the first-order fragment");
        assert_eq!(
            back, id,
            "intern(extract(id)) must be the identity (id equality ≡ structural equality)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(arena: &mut TermArena, a: TermId, b: TermId) -> TermId {
        arena.intern(Node::Op2(Op::Add, a, b))
    }

    #[test]
    fn interning_deduplicates_structurally_equal_nodes() {
        let mut arena = TermArena::new();
        let one = arena.intern(Node::Lit(Value::Int(1)));
        let one2 = arena.intern(Node::Lit(Value::Int(1)));
        assert_eq!(one, one2);
        assert_eq!(arena.len(), 1);

        let x = arena.intern(Node::Var(Symbol::intern("x")));
        let s1 = add(&mut arena, one, x);
        let s2 = add(&mut arena, one, x);
        assert_eq!(s1, s2);
        assert_ne!(s1, one);
        assert_eq!(arena.len(), 3);
    }

    #[test]
    fn extraction_matches_direct_construction() {
        let mut arena = TermArena::new();
        let one = arena.intern(Node::Lit(Value::Int(1)));
        let x = arena.intern(Node::Var(Symbol::intern("x")));
        let sum = add(&mut arena, one, x);
        let neg = arena.intern(Node::Op1(Op::Not, x));
        let iff = arena.intern(Node::If(neg, sum, one));
        assert_eq!(arena.render(iff), "(if (~ x) (+ 1 x) 1)");
        assert_eq!(arena.size(iff), 7);
        assert_eq!(arena.extract(iff).size(), arena.size(iff));
    }

    #[test]
    fn extraction_is_memoized_and_shares_subtrees() {
        let mut arena = TermArena::new();
        let x = arena.intern(Node::Var(Symbol::intern("x")));
        let sum = add(&mut arena, x, x);
        let outer = add(&mut arena, sum, sum);
        let e = arena.extract(outer);
        match &*e {
            Expr::Op(Op::Add, args) => {
                assert_eq!(args[0], args[1]);
            }
            other => panic!("expected op, got {other}"),
        }
        // Second extraction returns the identical Arc.
        assert!(Arc::ptr_eq(&e, &arena.extract(outer)));
    }

    #[test]
    fn intern_expr_round_trips_first_order_terms() {
        let mut arena = TermArena::new();
        let expr = Expr::op(
            Op::Cons,
            vec![Expr::int(1), Expr::op(Op::Cdr, vec![Expr::var("l")])],
        );
        let id = arena.intern_expr(&expr).expect("first-order");
        assert_eq!(*arena.extract(id), expr);
        // Re-interning the extracted expression gives the same id.
        let extracted = arena.extract(id);
        assert_eq!(arena.intern_expr(&extracted), Some(id));
    }

    #[test]
    fn intern_expr_rejects_higher_order_forms() {
        let mut arena = TermArena::new();
        let lam = Expr::lambda(vec![Symbol::intern("x")], Expr::var("x"));
        assert_eq!(arena.intern_expr(&lam), None);
        assert_eq!(arena.intern_expr(&Expr::Hole(0)), None);
        let app = Expr::comb(crate::ast::Comb::Map, vec![lam, Expr::var("l")]);
        assert_eq!(arena.intern_expr(&app), None);
    }

    #[test]
    fn reinterning_after_external_rollback_is_deterministic() {
        // Stores that roll back a level keep their arena; rebuilding the
        // level re-interns identical content and must observe identical
        // ids in identical order.
        let mut arena = TermArena::new();
        let x = arena.intern(Node::Var(Symbol::intern("x")));
        let one = arena.intern(Node::Lit(Value::Int(1)));
        let first = add(&mut arena, x, one);
        let len = arena.len();
        let again = add(&mut arena, x, one);
        assert_eq!(first, again);
        assert_eq!(arena.len(), len);
    }

    #[cfg(feature = "check-invariants")]
    #[test]
    fn roundtrip_invariant_holds_for_nested_terms() {
        let mut arena = TermArena::new();
        let l = arena.intern(Node::Var(Symbol::intern("l")));
        let cdr = arena.intern(Node::Op1(Op::Cdr, l));
        let car = arena.intern(Node::Op1(Op::Car, cdr));
        let cons = arena.intern(Node::Op2(Op::Cons, car, cdr));
        for id in [l, cdr, car, cons] {
            arena.assert_roundtrip(id);
        }
    }
}
