//! Abstract syntax of the λ² object language.
//!
//! Expressions are immutable and share subtrees via [`Arc`]: the synthesizer
//! creates new hypotheses by rebuilding only the spine from the root to a
//! hole, which keeps expansion cheap. Holes ([`Expr::Hole`]) are part of the
//! language so that hypotheses (partial programs) and complete programs are
//! the same type; evaluation of a hole is an error.

use std::fmt;
use std::sync::Arc;

use crate::symbol::Symbol;
use crate::value::Value;

/// Identifier for a hole in a hypothesis. Allocated by the synthesizer.
pub type HoleId = u32;

/// First-order built-in operators.
///
/// The higher-order combinators live in [`Comb`]; everything here is a plain
/// strict function on first-order values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Op {
    /// Integer addition `(+ a b)`.
    Add,
    /// Integer subtraction `(- a b)`.
    Sub,
    /// Integer multiplication `(* a b)`.
    Mul,
    /// Integer division `(/ a b)`; errors on division by zero.
    Div,
    /// Integer remainder `(% a b)`; errors on division by zero.
    Mod,
    /// Less-than `(< a b)`.
    Lt,
    /// Less-or-equal `(<= a b)`.
    Le,
    /// Greater-than `(> a b)`.
    Gt,
    /// Greater-or-equal `(>= a b)`.
    Ge,
    /// Structural equality `(= a b)` on any first-order type.
    Eq,
    /// Structural disequality `(!= a b)`.
    Neq,
    /// Boolean conjunction `(& a b)` (strict).
    And,
    /// Boolean disjunction `(| a b)` (strict).
    Or,
    /// Boolean negation `(~ a)`.
    Not,
    /// List construction `(cons x xs)`.
    Cons,
    /// Head of a list `(car xs)`; errors on `[]`.
    Car,
    /// Tail of a list `(cdr xs)`; errors on `[]`.
    Cdr,
    /// Emptiness test `(empty? xs)`.
    IsEmpty,
    /// List concatenation `(cat xs ys)`.
    Cat,
    /// List membership `(member x xs)`. (Extension op, excluded from the
    /// default library; the `dedup` benchmark adds it.)
    Member,
    /// Last element of a list `(last xs)`; errors on `[]`. (Extension op,
    /// excluded from the default library.)
    Last,
    /// Tree construction `(tree v cs)` from a value and a list of subtrees.
    TreeMake,
    /// Value at the root `(value t)`; errors on `{}`.
    TreeValue,
    /// Children of the root `(children t)` as a list; errors on `{}`.
    TreeChildren,
    /// Test for the empty tree `(empty-tree? t)`.
    IsEmptyTree,
    /// Test for a childless node `(leaf? t)`; errors on `{}`.
    IsLeaf,
    /// Pair construction `(pair a b)`.
    MkPair,
    /// First component `(fst p)`.
    Fst,
    /// Second component `(snd p)`.
    Snd,
}

impl Op {
    /// All operators, in a fixed deterministic order.
    pub const ALL: [Op; 29] = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Mod,
        Op::Lt,
        Op::Le,
        Op::Gt,
        Op::Ge,
        Op::Eq,
        Op::Neq,
        Op::And,
        Op::Or,
        Op::Not,
        Op::Cons,
        Op::Car,
        Op::Cdr,
        Op::IsEmpty,
        Op::Cat,
        Op::Member,
        Op::Last,
        Op::TreeMake,
        Op::TreeValue,
        Op::TreeChildren,
        Op::IsEmptyTree,
        Op::IsLeaf,
        Op::MkPair,
        Op::Fst,
        Op::Snd,
    ];

    /// The operator's surface-syntax name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Div => "/",
            Op::Mod => "%",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Eq => "=",
            Op::Neq => "!=",
            Op::And => "&",
            Op::Or => "|",
            Op::Not => "~",
            Op::Cons => "cons",
            Op::Car => "car",
            Op::Cdr => "cdr",
            Op::IsEmpty => "empty?",
            Op::Cat => "cat",
            Op::Member => "member",
            Op::Last => "last",
            Op::TreeMake => "tree",
            Op::TreeValue => "value",
            Op::TreeChildren => "children",
            Op::IsEmptyTree => "empty-tree?",
            Op::IsLeaf => "leaf?",
            Op::MkPair => "pair",
            Op::Fst => "fst",
            Op::Snd => "snd",
        }
    }

    /// Looks an operator up by its surface name.
    pub fn from_name(name: &str) -> Option<Op> {
        Op::ALL.iter().copied().find(|op| op.name() == name)
    }

    /// Number of arguments the operator takes.
    pub fn arity(self) -> usize {
        match self {
            Op::Not
            | Op::Car
            | Op::Cdr
            | Op::IsEmpty
            | Op::Last
            | Op::TreeValue
            | Op::TreeChildren
            | Op::IsEmptyTree
            | Op::IsLeaf
            | Op::Fst
            | Op::Snd => 1,
            _ => 2,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The higher-order combinators of the language.
///
/// These are the paper's generalization targets: each has a dedicated
/// deduction rule in the synthesizer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Comb {
    /// `(map f l)` — apply `f` to every element.
    Map,
    /// `(filter p l)` — keep elements satisfying `p`.
    Filter,
    /// `(foldl f e l)` — left fold; `f` takes `(acc, x)`.
    Foldl,
    /// `(foldr f e l)` — right fold; `f` takes `(x, acc)`.
    Foldr,
    /// `(recl f e l)` — general list recursion;
    /// `recl f e [] = e`, `recl f e (x:xs) = f(x, xs, recl f e xs)`.
    Recl,
    /// `(mapt f t)` — apply `f` to every node value of a tree.
    Mapt,
    /// `(foldt f e t)` — tree fold; `foldt f e {} = e`,
    /// `foldt f e {v, c…} = f(v, [foldt f e c, …])`.
    Foldt,
}

impl Comb {
    /// All combinators, in a fixed deterministic order.
    pub const ALL: [Comb; 7] = [
        Comb::Map,
        Comb::Filter,
        Comb::Foldl,
        Comb::Foldr,
        Comb::Recl,
        Comb::Mapt,
        Comb::Foldt,
    ];

    /// The combinator's surface-syntax name.
    pub fn name(self) -> &'static str {
        match self {
            Comb::Map => "map",
            Comb::Filter => "filter",
            Comb::Foldl => "foldl",
            Comb::Foldr => "foldr",
            Comb::Recl => "recl",
            Comb::Mapt => "mapt",
            Comb::Foldt => "foldt",
        }
    }

    /// Looks a combinator up by its surface name.
    pub fn from_name(name: &str) -> Option<Comb> {
        Comb::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Number of arguments (including the function argument).
    pub fn arity(self) -> usize {
        match self {
            Comb::Map | Comb::Filter | Comb::Mapt => 2,
            Comb::Foldl | Comb::Foldr | Comb::Recl | Comb::Foldt => 3,
        }
    }

    /// Arity of the function argument the combinator expects.
    pub fn fun_arity(self) -> usize {
        match self {
            Comb::Map | Comb::Filter | Comb::Mapt => 1,
            Comb::Foldl | Comb::Foldr | Comb::Foldt => 2,
            Comb::Recl => 3,
        }
    }
}

impl fmt::Display for Comb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An expression of the object language (possibly containing holes).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal first-order value (`42`, `true`, `[]`, `{}` …).
    Lit(Value),
    /// A variable reference.
    Var(Symbol),
    /// `(if c t e)`.
    If(Arc<Expr>, Arc<Expr>, Arc<Expr>),
    /// `(lambda (x…) body)`.
    Lambda(Arc<[Symbol]>, Arc<Expr>),
    /// Application of a combinator or closure to arguments.
    App(Arc<Expr>, Arc<[Expr]>),
    /// A saturated first-order operator application.
    Op(Op, Arc<[Expr]>),
    /// A built-in combinator in callee position.
    Comb(Comb),
    /// A hole (free metavariable) in a hypothesis.
    Hole(HoleId),
}

impl Expr {
    /// Integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Lit(Value::Int(n))
    }

    /// Boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::Lit(Value::Bool(b))
    }

    /// Variable reference.
    pub fn var(name: impl Into<Symbol>) -> Expr {
        Expr::Var(name.into())
    }

    /// Operator application; panics if the argument count mismatches the
    /// operator arity (programming error in the caller).
    pub fn op(op: Op, args: Vec<Expr>) -> Expr {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
        Expr::Op(op, args.into())
    }

    /// Combinator application, e.g. `Expr::comb(Comb::Map, vec![f, l])`.
    pub fn comb(comb: Comb, args: Vec<Expr>) -> Expr {
        assert_eq!(args.len(), comb.arity(), "arity mismatch for {comb}");
        Expr::App(Arc::new(Expr::Comb(comb)), args.into())
    }

    /// Lambda abstraction.
    pub fn lambda(params: Vec<Symbol>, body: Expr) -> Expr {
        Expr::Lambda(params.into(), Arc::new(body))
    }

    /// Conditional.
    pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Arc::new(c), Arc::new(t), Arc::new(e))
    }

    /// Number of AST nodes. Lambdas count their binder list as one node.
    pub fn size(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::Comb(_) | Expr::Hole(_) => 1,
            Expr::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Expr::Lambda(_, b) => 1 + b.size(),
            Expr::App(f, args) => f.size() + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Op(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// `true` if the expression contains no [`Expr::Hole`].
    pub fn is_complete(&self) -> bool {
        match self {
            Expr::Hole(_) => false,
            Expr::Lit(_) | Expr::Var(_) | Expr::Comb(_) => true,
            Expr::If(c, t, e) => c.is_complete() && t.is_complete() && e.is_complete(),
            Expr::Lambda(_, b) => b.is_complete(),
            Expr::App(f, args) => f.is_complete() && args.iter().all(Expr::is_complete),
            Expr::Op(_, args) => args.iter().all(Expr::is_complete),
        }
    }

    /// Collects hole ids in left-to-right order into `out`.
    pub fn holes(&self, out: &mut Vec<HoleId>) {
        match self {
            Expr::Hole(h) => out.push(*h),
            Expr::Lit(_) | Expr::Var(_) | Expr::Comb(_) => {}
            Expr::If(c, t, e) => {
                c.holes(out);
                t.holes(out);
                e.holes(out);
            }
            Expr::Lambda(_, b) => b.holes(out),
            Expr::App(f, args) => {
                f.holes(out);
                for a in args.iter() {
                    a.holes(out);
                }
            }
            Expr::Op(_, args) => {
                for a in args.iter() {
                    a.holes(out);
                }
            }
        }
    }

    /// Returns a copy of `self` with hole `target` replaced by `filler`.
    ///
    /// Only the spine from the root to the hole is rebuilt; untouched
    /// subtrees are shared with `self`.
    pub fn fill_hole(&self, target: HoleId, filler: &Expr) -> Expr {
        match self {
            Expr::Hole(h) if *h == target => filler.clone(),
            Expr::Hole(_) | Expr::Lit(_) | Expr::Var(_) | Expr::Comb(_) => self.clone(),
            Expr::If(c, t, e) => Expr::If(
                fill_rc(c, target, filler),
                fill_rc(t, target, filler),
                fill_rc(e, target, filler),
            ),
            Expr::Lambda(ps, b) => Expr::Lambda(ps.clone(), fill_rc(b, target, filler)),
            Expr::App(f, args) => {
                Expr::App(fill_rc(f, target, filler), fill_slice(args, target, filler))
            }
            Expr::Op(op, args) => Expr::Op(*op, fill_slice(args, target, filler)),
        }
    }

    /// Free variables of the expression, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut bound = Vec::new();
        fn go(e: &Expr, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
            match e {
                Expr::Var(x) => {
                    if !bound.contains(x) && !out.contains(x) {
                        out.push(*x);
                    }
                }
                Expr::Lit(_) | Expr::Comb(_) | Expr::Hole(_) => {}
                Expr::If(c, t, el) => {
                    go(c, bound, out);
                    go(t, bound, out);
                    go(el, bound, out);
                }
                Expr::Lambda(ps, b) => {
                    let n = bound.len();
                    bound.extend(ps.iter().copied());
                    go(b, bound, out);
                    bound.truncate(n);
                }
                Expr::App(f, args) => {
                    go(f, bound, out);
                    for a in args.iter() {
                        go(a, bound, out);
                    }
                }
                Expr::Op(_, args) => {
                    for a in args.iter() {
                        go(a, bound, out);
                    }
                }
            }
        }
        go(self, &mut bound, &mut out);
        out
    }
}

fn fill_rc(e: &Arc<Expr>, target: HoleId, filler: &Expr) -> Arc<Expr> {
    let mut holes = Vec::new();
    e.holes(&mut holes);
    if holes.contains(&target) {
        Arc::new(e.fill_hole(target, filler))
    } else {
        e.clone()
    }
}

fn fill_slice(args: &Arc<[Expr]>, target: HoleId, filler: &Expr) -> Arc<[Expr]> {
    let mut holes = Vec::new();
    for a in args.iter() {
        a.holes(&mut holes);
    }
    if holes.contains(&target) {
        args.iter().map(|a| a.fill_hole(target, filler)).collect()
    } else {
        args.clone()
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug shares the s-expression rendering; see `pretty`.
        write!(f, "{}", crate::pretty::pretty(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::pretty(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_metadata_is_consistent() {
        for op in Op::ALL {
            assert_eq!(Op::from_name(op.name()), Some(op));
            assert!(op.arity() == 1 || op.arity() == 2);
        }
        assert_eq!(Op::from_name("nonsense"), None);
    }

    #[test]
    fn comb_metadata_is_consistent() {
        for c in Comb::ALL {
            assert_eq!(Comb::from_name(c.name()), Some(c));
            assert!(c.arity() >= 2 && c.arity() <= 3);
            assert!(c.fun_arity() >= 1 && c.fun_arity() <= 3);
        }
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::op(
            Op::Add,
            vec![
                Expr::int(1),
                Expr::op(Op::Mul, vec![Expr::var("x"), Expr::int(2)]),
            ],
        );
        assert_eq!(e.size(), 5);
        let l = Expr::lambda(vec![Symbol::intern("x")], Expr::var("x"));
        assert_eq!(l.size(), 2);
    }

    #[test]
    fn holes_and_completeness() {
        let h = Expr::comb(Comb::Map, vec![Expr::Hole(0), Expr::var("l")]);
        assert!(!h.is_complete());
        let mut ids = Vec::new();
        h.holes(&mut ids);
        assert_eq!(ids, vec![0]);

        let filled = h.fill_hole(0, &Expr::lambda(vec![Symbol::intern("x")], Expr::var("x")));
        assert!(filled.is_complete());
        let mut ids2 = Vec::new();
        filled.holes(&mut ids2);
        assert!(ids2.is_empty());
    }

    #[test]
    fn fill_hole_shares_untouched_subtrees() {
        let shared = Arc::new(Expr::var("big"));
        let e = Expr::If(
            Arc::new(Expr::Hole(1)),
            shared.clone(),
            Arc::new(Expr::int(0)),
        );
        let filled = e.fill_hole(1, &Expr::bool(true));
        match filled {
            Expr::If(_, t, _) => assert!(Arc::ptr_eq(&t, &shared)),
            _ => panic!("expected if"),
        }
    }

    #[test]
    fn free_vars_respect_binders() {
        let x = Symbol::intern("x");
        let e = Expr::comb(
            Comb::Map,
            vec![
                Expr::lambda(
                    vec![x],
                    Expr::op(Op::Add, vec![Expr::var("x"), Expr::var("y")]),
                ),
                Expr::var("l"),
            ],
        );
        let fv = e.free_vars();
        assert_eq!(fv, vec![Symbol::intern("y"), Symbol::intern("l")]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn op_constructor_checks_arity() {
        let _ = Expr::op(Op::Add, vec![Expr::int(1)]);
    }
}
