//! Pretty-printing of expressions.
//!
//! The output is valid input for [`crate::parser::parse_expr`], so
//! `parse ∘ pretty` is the identity on well-formed expressions (a property
//! test in the synth crate checks this on random ASTs).

use std::fmt::Write as _;

use crate::ast::Expr;

/// Renders an expression in the s-expression surface syntax.
///
/// # Examples
///
/// ```
/// use lambda2_lang::parser::parse_expr;
/// use lambda2_lang::pretty::pretty;
/// let e = parse_expr("(map (lambda (x) (+ x 1)) l)").unwrap();
/// assert_eq!(pretty(&e), "(map (lambda (x) (+ x 1)) l)");
/// ```
pub fn pretty(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr);
    out
}

fn write_expr(out: &mut String, expr: &Expr) {
    match expr {
        Expr::Lit(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(x) => out.push_str(x.as_str()),
        Expr::Comb(c) => out.push_str(c.name()),
        Expr::Hole(h) => {
            let _ = write!(out, "?{h}");
        }
        Expr::If(c, t, e) => {
            out.push_str("(if ");
            write_expr(out, c);
            out.push(' ');
            write_expr(out, t);
            out.push(' ');
            write_expr(out, e);
            out.push(')');
        }
        Expr::Lambda(params, body) => {
            out.push_str("(lambda (");
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(p.as_str());
            }
            out.push_str(") ");
            write_expr(out, body);
            out.push(')');
        }
        Expr::Op(op, args) => {
            out.push('(');
            out.push_str(op.name());
            for a in args.iter() {
                out.push(' ');
                write_expr(out, a);
            }
            out.push(')');
        }
        Expr::App(f, args) => {
            out.push('(');
            write_expr(out, f);
            for a in args.iter() {
                out.push(' ');
                write_expr(out, a);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Comb, Op};
    use crate::symbol::Symbol;
    use crate::value::Value;

    #[test]
    fn holes_render_with_question_mark() {
        let e = Expr::comb(Comb::Map, vec![Expr::Hole(7), Expr::var("l")]);
        assert_eq!(pretty(&e), "(map ?7 l)");
    }

    #[test]
    fn literals_render_as_values() {
        assert_eq!(pretty(&Expr::Lit(Value::nil())), "[]");
        assert_eq!(pretty(&Expr::int(-3)), "-3");
        assert_eq!(pretty(&Expr::bool(true)), "true");
    }

    #[test]
    fn nested_structure() {
        let x = Symbol::intern("x");
        let e = Expr::comb(
            Comb::Foldr,
            vec![
                Expr::lambda(
                    vec![x, Symbol::intern("a")],
                    Expr::op(Op::Cons, vec![Expr::var("x"), Expr::var("a")]),
                ),
                Expr::Lit(Value::nil()),
                Expr::var("l"),
            ],
        );
        assert_eq!(pretty(&e), "(foldr (lambda (x a) (cons x a)) [] l)");
    }
}
