//! S-expression front end.
//!
//! The surface syntax mirrors the paper's examples:
//!
//! ```text
//! values      42   true   [1 2 3]   {1 {2} {3 {4}}}   [[1] []]
//! expressions (map (lambda (x) (+ x 1)) l)   (if (empty? l) 0 1)   ?0
//! types       int   bool   [int]   (tree [int])
//! ```
//!
//! Parsing goes through a generic [`Sexp`] layer so that higher levels
//! (problem files, the CLI) can reuse the reader.

use std::fmt;

use crate::ast::{Comb, Expr, Op};
use crate::error::ParseError;
use crate::symbol::Symbol;
use crate::ty::Type;
use crate::value::{Tree, Value};

/// A generic s-expression: atoms plus three bracket shapes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sexp {
    /// A bare token (`foo`, `42`, `+`, `?3`).
    Atom(String),
    /// `( … )` — applications and special forms.
    List(Vec<Sexp>),
    /// `[ … ]` — list literals and list types.
    Bracket(Vec<Sexp>),
    /// `{ … }` — tree literals.
    Brace(Vec<Sexp>),
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn seq(f: &mut fmt::Formatter<'_>, items: &[Sexp], open: char, close: char) -> fmt::Result {
            write!(f, "{open}")?;
            for (i, s) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, "{close}")
        }
        match self {
            Sexp::Atom(a) => f.write_str(a),
            Sexp::List(xs) => seq(f, xs, '(', ')'),
            Sexp::Bracket(xs) => seq(f, xs, '[', ']'),
            Sexp::Brace(xs) => seq(f, xs, '{', '}'),
        }
    }
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, PartialEq)]
enum Token {
    Open(char),
    Close(char),
    Atom(String),
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src, pos: 0 }
    }

    fn skip_trivia(&mut self) {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let c = bytes[self.pos];
            if c == b';' {
                // Line comment.
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<Option<Token>, ParseError> {
        self.skip_trivia();
        let bytes = self.src.as_bytes();
        if self.pos >= bytes.len() {
            return Ok(None);
        }
        let c = bytes[self.pos] as char;
        match c {
            '(' | '[' | '{' => {
                self.pos += 1;
                Ok(Some(Token::Open(c)))
            }
            ')' | ']' | '}' => {
                self.pos += 1;
                Ok(Some(Token::Close(c)))
            }
            _ => {
                let start = self.pos;
                while self.pos < bytes.len() {
                    let c = bytes[self.pos] as char;
                    if c.is_ascii_whitespace() || "()[]{};".contains(c) {
                        break;
                    }
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(ParseError::new(
                        start,
                        format!("unexpected character `{c}`"),
                    ));
                }
                Ok(Some(Token::Atom(self.src[start..self.pos].to_owned())))
            }
        }
    }
}

fn closer_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        '{' => '}',
        other => unreachable!("closer_of is only called on open brackets, got `{other}`"),
    }
}

fn read_sexp(lex: &mut Lexer<'_>) -> Result<Option<Sexp>, ParseError> {
    let start = lex.pos;
    match lex.next()? {
        None => Ok(None),
        Some(Token::Atom(a)) => Ok(Some(Sexp::Atom(a))),
        Some(Token::Close(c)) => Err(ParseError::new(start, format!("unexpected `{c}`"))),
        Some(Token::Open(open)) => {
            let mut items = Vec::new();
            loop {
                let save = lex.pos;
                lex.skip_trivia();
                let probe = lex.pos;
                match lex.next()? {
                    None => {
                        return Err(ParseError::new(
                            probe,
                            format!("unterminated `{open}` (expected `{}`)", closer_of(open)),
                        ))
                    }
                    Some(Token::Close(c)) if c == closer_of(open) => break,
                    Some(Token::Close(c)) => {
                        return Err(ParseError::new(probe, format!("mismatched `{c}`")))
                    }
                    _ => {
                        lex.pos = save;
                        match read_sexp(lex)? {
                            Some(s) => items.push(s),
                            None => unreachable!("lexer produced a token above"),
                        }
                    }
                }
            }
            Ok(Some(match open {
                '(' => Sexp::List(items),
                '[' => Sexp::Bracket(items),
                '{' => Sexp::Brace(items),
                other => unreachable!("delimited reads start at an open bracket, got `{other}`"),
            }))
        }
    }
}

/// Parses a single s-expression; trailing input is an error.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed or trailing input.
pub fn parse_sexp(src: &str) -> Result<Sexp, ParseError> {
    let mut lex = Lexer::new(src);
    let sexp = read_sexp(&mut lex)?.ok_or_else(|| ParseError::new(0, "empty input"))?;
    lex.skip_trivia();
    if lex.pos < src.len() {
        return Err(ParseError::new(lex.pos, "trailing input"));
    }
    Ok(sexp)
}

/// Parses a whole file of s-expressions.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_sexps(src: &str) -> Result<Vec<Sexp>, ParseError> {
    let mut lex = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(s) = read_sexp(&mut lex)? {
        out.push(s);
    }
    Ok(out)
}

/// Interprets an [`Sexp`] as a first-order value.
///
/// # Errors
///
/// Returns [`ParseError`] if the s-expression is not a value form.
pub fn value_of_sexp(sexp: &Sexp) -> Result<Value, ParseError> {
    match sexp {
        Sexp::Atom(a) => match a.as_str() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => a
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| ParseError::new(0, format!("`{a}` is not a value"))),
        },
        Sexp::Bracket(items) => items
            .iter()
            .map(value_of_sexp)
            .collect::<Result<Vec<_>, _>>()
            .map(Value::list),
        Sexp::Brace(items) => {
            if items.is_empty() {
                return Ok(Value::Tree(Tree::empty()));
            }
            let v = value_of_sexp(&items[0])?;
            let children = items[1..]
                .iter()
                .map(|c| {
                    value_of_sexp(c).and_then(|cv| {
                        cv.as_tree()
                            .cloned()
                            .ok_or_else(|| ParseError::new(0, "tree child must be a tree"))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::Tree(Tree::node(v, children)))
        }
        Sexp::List(items) => match items.split_first() {
            Some((Sexp::Atom(head), rest)) if head == "pair" && rest.len() == 2 => Ok(Value::pair(
                value_of_sexp(&rest[0])?,
                value_of_sexp(&rest[1])?,
            )),
            _ => Err(ParseError::new(
                0,
                "`(…)` is not a value form (except `(pair v v)`)",
            )),
        },
    }
}

/// Parses a value from source text (`42`, `[1 2]`, `{1 {2}}` …).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
///
/// # Examples
///
/// ```
/// use lambda2_lang::parser::parse_value;
/// let v = parse_value("[[1 2] []]")?;
/// assert_eq!(v.to_string(), "[[1 2] []]");
/// # Ok::<(), lambda2_lang::error::ParseError>(())
/// ```
pub fn parse_value(src: &str) -> Result<Value, ParseError> {
    value_of_sexp(&parse_sexp(src)?)
}

/// Interprets an [`Sexp`] as a type.
///
/// # Errors
///
/// Returns [`ParseError`] if the s-expression is not a type form.
pub fn type_of_sexp(sexp: &Sexp) -> Result<Type, ParseError> {
    match sexp {
        Sexp::Atom(a) => match a.as_str() {
            "int" => Ok(Type::Int),
            "bool" => Ok(Type::Bool),
            _ => Err(ParseError::new(0, format!("unknown type `{a}`"))),
        },
        Sexp::Bracket(items) => {
            if items.len() != 1 {
                return Err(ParseError::new(
                    0,
                    "list type takes exactly one element type",
                ));
            }
            Ok(Type::list(type_of_sexp(&items[0])?))
        }
        Sexp::List(items) => match items.split_first() {
            Some((Sexp::Atom(head), rest)) if head == "tree" && rest.len() == 1 => {
                Ok(Type::tree(type_of_sexp(&rest[0])?))
            }
            Some((Sexp::Atom(head), rest)) if head == "pair" && rest.len() == 2 => {
                Ok(Type::pair(type_of_sexp(&rest[0])?, type_of_sexp(&rest[1])?))
            }
            _ => Err(ParseError::new(0, "expected `(tree τ)` or `(pair τ τ)`")),
        },
        Sexp::Brace(_) => Err(ParseError::new(0, "`{…}` is not a type form")),
    }
}

/// Parses a type from source text (`int`, `[int]`, `(tree [int])` …).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_type(src: &str) -> Result<Type, ParseError> {
    type_of_sexp(&parse_sexp(src)?)
}

/// Interprets an [`Sexp`] as an expression.
///
/// # Errors
///
/// Returns [`ParseError`] if the s-expression is not an expression form.
pub fn expr_of_sexp(sexp: &Sexp) -> Result<Expr, ParseError> {
    match sexp {
        Sexp::Atom(a) => {
            if a == "true" || a == "false" {
                return Ok(Expr::bool(a == "true"));
            }
            if let Ok(n) = a.parse::<i64>() {
                return Ok(Expr::int(n));
            }
            if let Some(rest) = a.strip_prefix('?') {
                let id = rest
                    .parse::<u32>()
                    .map_err(|_| ParseError::new(0, format!("bad hole `{a}`")))?;
                return Ok(Expr::Hole(id));
            }
            if let Some(c) = Comb::from_name(a) {
                return Ok(Expr::Comb(c));
            }
            Ok(Expr::Var(Symbol::intern(a)))
        }
        Sexp::Bracket(_) | Sexp::Brace(_) => value_of_sexp(sexp).map(Expr::Lit),
        Sexp::List(items) => {
            let (head, rest) = items
                .split_first()
                .ok_or_else(|| ParseError::new(0, "empty application"))?;
            if let Sexp::Atom(a) = head {
                match a.as_str() {
                    "if" => {
                        if rest.len() != 3 {
                            return Err(ParseError::new(0, "`if` takes three arguments"));
                        }
                        return Ok(Expr::if_(
                            expr_of_sexp(&rest[0])?,
                            expr_of_sexp(&rest[1])?,
                            expr_of_sexp(&rest[2])?,
                        ));
                    }
                    "lambda" => {
                        if rest.len() != 2 {
                            return Err(ParseError::new(
                                0,
                                "`lambda` takes a binder list and a body",
                            ));
                        }
                        let Sexp::List(binders) = &rest[0] else {
                            return Err(ParseError::new(0, "lambda binders must be `(x …)`"));
                        };
                        let params = binders
                            .iter()
                            .map(|b| match b {
                                Sexp::Atom(x) => Ok(Symbol::intern(x)),
                                _ => Err(ParseError::new(0, "binder must be an identifier")),
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        return Ok(Expr::lambda(params, expr_of_sexp(&rest[1])?));
                    }
                    _ => {
                        if let Some(op) = Op::from_name(a) {
                            if rest.len() != op.arity() {
                                return Err(ParseError::new(
                                    0,
                                    format!("`{a}` takes {} arguments", op.arity()),
                                ));
                            }
                            let args = rest
                                .iter()
                                .map(expr_of_sexp)
                                .collect::<Result<Vec<_>, _>>()?;
                            return Ok(Expr::Op(op, args.into()));
                        }
                    }
                }
            }
            let f = expr_of_sexp(head)?;
            let args = rest
                .iter()
                .map(expr_of_sexp)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Expr::App(f.into(), args.into()))
        }
    }
}

/// Parses an expression from source text.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
///
/// # Examples
///
/// ```
/// use lambda2_lang::parser::parse_expr;
/// let e = parse_expr("(map (lambda (x) (+ x 1)) l)")?;
/// assert_eq!(e.to_string(), "(map (lambda (x) (+ x 1)) l)");
/// # Ok::<(), lambda2_lang::error::ParseError>(())
/// ```
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    expr_of_sexp(&parse_sexp(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_handles_comments_and_whitespace() {
        let v = parse_value("; a comment\n  [1 ; inline\n 2]").unwrap();
        assert_eq!(v.to_string(), "[1 2]");
    }

    #[test]
    fn values_round_trip() {
        for src in [
            "42",
            "-7",
            "true",
            "false",
            "[]",
            "[1 2 3]",
            "[[1] [] [2 3]]",
            "{}",
            "{5}",
            "{1 {2} {3 {4} {5}}}",
            "[{1} {}]",
            "(pair 1 2)",
            "[(pair 1 [2]) (pair 3 [])]",
            "(pair (pair 1 2) {3})",
        ] {
            let v = parse_value(src).unwrap();
            assert_eq!(v.to_string(), src, "round-trip of {src}");
        }
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(parse_value("(+ 1 2)").is_err());
        assert!(parse_value("[1").is_err());
        assert!(parse_value("1]").is_err());
        assert!(parse_value("{1 2}").is_err()); // tree child must be a tree
        assert!(parse_value("wibble").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn types_parse() {
        assert_eq!(parse_type("int").unwrap(), Type::Int);
        assert_eq!(parse_type("[int]").unwrap(), Type::list(Type::Int));
        assert_eq!(
            parse_type("(tree [bool])").unwrap(),
            Type::tree(Type::list(Type::Bool))
        );
        assert!(parse_type("[int bool]").is_err());
        assert!(parse_type("float").is_err());
        assert!(parse_type("{int}").is_err());
        assert_eq!(
            parse_type("(pair int [bool])").unwrap(),
            Type::pair(Type::Int, Type::list(Type::Bool))
        );
        assert!(parse_type("(pair int)").is_err());
    }

    #[test]
    fn exprs_round_trip() {
        for src in [
            "x",
            "42",
            "(+ x 1)",
            "(if (empty? l) 0 (car l))",
            "(map (lambda (x) (* x x)) l)",
            "(foldl (lambda (a x) (cons x a)) [] l)",
            "(foldt (lambda (v rs) (foldl + v rs)) 0 t)",
            "?3",
            "(filter (lambda (x) (> x 0)) (cdr l))",
        ] {
            let e = parse_expr(src).unwrap();
            assert_eq!(e.to_string(), src, "round-trip of {src}");
        }
    }

    #[test]
    fn op_names_parse_as_ops_with_arity_checked() {
        assert!(matches!(
            parse_expr("(cons 1 [])").unwrap(),
            Expr::Op(Op::Cons, _)
        ));
        assert!(parse_expr("(cons 1)").is_err());
        assert!(parse_expr("(if 1 2)").is_err());
    }

    #[test]
    fn application_of_op_symbol_inside_fold_parses_as_var() {
        // `+` in argument position (not head) is a variable, which eval
        // would report unbound; the suite always wraps ops in lambdas.
        let e = parse_expr("(foldl + 0 l)").unwrap();
        match e {
            Expr::App(_, args) => assert!(matches!(args[0], Expr::Var(_))),
            _ => panic!("expected application"),
        }
    }

    #[test]
    fn parse_sexps_reads_many() {
        let all = parse_sexps("(a) [1] {2} atom ; end\n").unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn error_offsets_are_plausible() {
        let err = parse_value("[1 2").unwrap_err();
        assert!(err.offset >= 4);
        let err = parse_sexp(")").unwrap_err();
        assert_eq!(err.offset, 0);
    }
}
