//! Type inference for object-language expressions.
//!
//! A small Hindley-Milner-style checker (without let-polymorphism — the
//! language has no `let`): operator and combinator type schemes are
//! instantiated at each use and constraints are solved by unification.
//! The synthesizer uses this to reject ill-typed hypothesis expansions and
//! to type problem signatures.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Expr, HoleId};
use crate::symbol::Symbol;
use crate::ty::{Subst, Type, UnifyError};
use crate::value::Value;

/// A typing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two types failed to unify.
    Unify(UnifyError),
    /// A free variable had no declared type.
    Unbound(Symbol),
    /// A hole had no declared type.
    UnboundHole(HoleId),
    /// A literal contained a non-first-order value.
    HigherOrderLiteral,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Unify(e) => write!(f, "{e}"),
            TypeError::Unbound(s) => write!(f, "variable `{s}` has no declared type"),
            TypeError::UnboundHole(h) => write!(f, "hole ?{h} has no declared type"),
            TypeError::HigherOrderLiteral => write!(f, "literal is not first-order"),
        }
    }
}

impl std::error::Error for TypeError {}

impl From<UnifyError> for TypeError {
    fn from(e: UnifyError) -> TypeError {
        TypeError::Unify(e)
    }
}

/// A typing context mapping variables (and holes) to types.
#[derive(Clone, Debug, Default)]
pub struct TypeEnv {
    vars: HashMap<Symbol, Type>,
    holes: HashMap<HoleId, Type>,
}

impl TypeEnv {
    /// Creates an empty typing context.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Declares a variable's type, returning `self` for chaining.
    pub fn with_var(mut self, sym: Symbol, ty: Type) -> TypeEnv {
        self.vars.insert(sym, ty);
        self
    }

    /// Declares a hole's type, returning `self` for chaining.
    pub fn with_hole(mut self, hole: HoleId, ty: Type) -> TypeEnv {
        self.holes.insert(hole, ty);
        self
    }

    /// Looks up a variable.
    pub fn var(&self, sym: Symbol) -> Option<&Type> {
        self.vars.get(&sym)
    }
}

/// Infers the type of `expr` in `env`, extending `subst` with the
/// constraints discovered along the way.
///
/// # Errors
///
/// Returns a [`TypeError`] if the expression is ill-typed or mentions an
/// undeclared variable or hole.
///
/// # Examples
///
/// ```
/// use lambda2_lang::infer::{infer, TypeEnv};
/// use lambda2_lang::parser::{parse_expr, parse_type};
/// use lambda2_lang::symbol::Symbol;
/// use lambda2_lang::ty::Subst;
///
/// let env = TypeEnv::new().with_var(Symbol::intern("l"), parse_type("[int]").unwrap());
/// let mut subst = Subst::new();
/// let e = parse_expr("(map (lambda (x) (+ x 1)) l)").unwrap();
/// let ty = infer(&e, &env, &mut subst).unwrap();
/// assert_eq!(subst.apply(&ty).to_string(), "[int]");
/// ```
pub fn infer(expr: &Expr, env: &TypeEnv, subst: &mut Subst) -> Result<Type, TypeError> {
    match expr {
        Expr::Lit(v) => {
            if !v.is_first_order() {
                return Err(TypeError::HigherOrderLiteral);
            }
            let mut fresh = |s: &mut Subst| s.fresh();
            Ok(type_of_value(v, subst, &mut fresh))
        }
        Expr::Var(x) => env.var(*x).cloned().ok_or(TypeError::Unbound(*x)),
        Expr::Hole(h) => env.holes.get(h).cloned().ok_or(TypeError::UnboundHole(*h)),
        Expr::Comb(c) => Ok(subst.instantiate(&c.type_scheme())),
        Expr::If(c, t, e) => {
            let ct = infer(c, env, subst)?;
            subst.unify(&ct, &Type::Bool)?;
            let tt = infer(t, env, subst)?;
            let et = infer(e, env, subst)?;
            subst.unify(&tt, &et)?;
            Ok(tt)
        }
        Expr::Lambda(params, body) => {
            let mut inner = env.clone();
            let mut ptys = Vec::with_capacity(params.len());
            for p in params.iter() {
                let t = subst.fresh();
                inner = inner.with_var(*p, t.clone());
                ptys.push(t);
            }
            let rty = infer(body, &inner, subst)?;
            Ok(Type::fun(ptys, rty))
        }
        Expr::Op(op, args) => {
            let scheme = subst.instantiate(&op.type_scheme());
            apply_fun_type(&scheme, args, env, subst)
        }
        Expr::App(f, args) => {
            let fty = infer(f, env, subst)?;
            apply_fun_type(&fty, args, env, subst)
        }
    }
}

fn apply_fun_type(
    fty: &Type,
    args: &[Expr],
    env: &TypeEnv,
    subst: &mut Subst,
) -> Result<Type, TypeError> {
    let mut atys = Vec::with_capacity(args.len());
    for a in args {
        atys.push(infer(a, env, subst)?);
    }
    let ret = subst.fresh();
    subst.unify(fty, &Type::fun(atys, ret.clone()))?;
    Ok(ret)
}

fn type_of_value(v: &Value, subst: &mut Subst, fresh: &mut dyn FnMut(&mut Subst) -> Type) -> Type {
    let mut mk = || fresh(subst);
    // `Value::type_of` needs a plain FnMut; adapt through a small closure.
    fn go(v: &Value, mk: &mut dyn FnMut() -> Type) -> Type {
        v.type_of(mk)
    }
    go(v, &mut mk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_type};

    fn check(src: &str, vars: &[(&str, &str)]) -> Result<String, TypeError> {
        let mut env = TypeEnv::new();
        for (name, ty) in vars {
            env = env.with_var(Symbol::intern(name), parse_type(ty).unwrap());
        }
        let mut subst = Subst::new();
        let e = parse_expr(src).unwrap();
        let t = infer(&e, &env, &mut subst)?;
        Ok(subst.apply(&t).to_string())
    }

    #[test]
    fn simple_expressions() {
        assert_eq!(check("(+ 1 2)", &[]).unwrap(), "int");
        assert_eq!(check("(< 1 2)", &[]).unwrap(), "bool");
        assert_eq!(check("(cons 1 [])", &[]).unwrap(), "[int]");
        assert_eq!(check("(if true 1 2)", &[]).unwrap(), "int");
    }

    #[test]
    fn ill_typed_expressions_are_rejected() {
        assert!(check("(+ 1 true)", &[]).is_err());
        assert!(check("(if 1 2 3)", &[]).is_err());
        assert!(check("(if true 1 false)", &[]).is_err());
        assert!(check("(cons 1 [true])", &[]).is_err());
        assert!(check("(car 5)", &[]).is_err());
    }

    #[test]
    fn variables_need_declarations() {
        assert!(matches!(check("x", &[]), Err(TypeError::Unbound(_))));
        assert_eq!(check("x", &[("x", "int")]).unwrap(), "int");
    }

    #[test]
    fn combinator_applications() {
        assert_eq!(
            check("(map (lambda (x) (* x x)) l)", &[("l", "[int]")]).unwrap(),
            "[int]"
        );
        assert_eq!(
            check("(filter (lambda (x) (empty? x)) l)", &[("l", "[[int]]")]).unwrap(),
            "[[int]]"
        );
        assert_eq!(
            check("(foldl (lambda (a x) (+ a x)) 0 l)", &[("l", "[int]")]).unwrap(),
            "int"
        );
        assert_eq!(
            check(
                "(foldt (lambda (v rs) (foldl (lambda (a r) (+ a r)) v rs)) 0 t)",
                &[("t", "(tree int)")]
            )
            .unwrap(),
            "int"
        );
        assert_eq!(
            check("(mapt (lambda (x) (= x 0)) t)", &[("t", "(tree int)")]).unwrap(),
            "(tree bool)"
        );
        assert_eq!(
            check(
                "(recl (lambda (x xs r) (cons x r)) [] l)",
                &[("l", "[int]")]
            )
            .unwrap(),
            "[int]"
        );
    }

    #[test]
    fn combinator_misuse_is_rejected() {
        // map's function must take the element type.
        assert!(check("(map (lambda (x) (~ x)) l)", &[("l", "[int]")]).is_err());
        // filter's predicate must return bool.
        assert!(check("(filter (lambda (x) (+ x 1)) l)", &[("l", "[int]")]).is_err());
        // fold over a tree is not a list fold.
        assert!(check("(foldl (lambda (a x) a) 0 t)", &[("t", "(tree int)")]).is_err());
    }

    #[test]
    fn holes_type_through_declarations() {
        let env = TypeEnv::new()
            .with_var(Symbol::intern("l"), parse_type("[int]").unwrap())
            .with_hole(0, Type::fun(vec![Type::Int], Type::Int));
        let mut subst = Subst::new();
        let e = parse_expr("(map ?0 l)").unwrap();
        let t = infer(&e, &env, &mut subst).unwrap();
        assert_eq!(subst.apply(&t).to_string(), "[int]");

        // Undeclared holes error out.
        let e = parse_expr("?9").unwrap();
        assert!(matches!(
            infer(&e, &TypeEnv::new(), &mut subst),
            Err(TypeError::UnboundHole(9))
        ));
    }

    #[test]
    fn pair_expressions_infer() {
        assert_eq!(check("(pair 1 true)", &[]).unwrap(), "(pair int bool)");
        assert_eq!(
            check("(fst p)", &[("p", "(pair int [bool])")]).unwrap(),
            "int"
        );
        assert_eq!(
            check("(snd p)", &[("p", "(pair int [bool])")]).unwrap(),
            "[bool]"
        );
        assert!(check("(fst 3)", &[]).is_err());
        assert_eq!(
            check(
                "(map (lambda (x) (fst x)) l)",
                &[("l", "[(pair int bool)]")]
            )
            .unwrap(),
            "[int]"
        );
    }

    #[test]
    fn empty_list_literal_is_polymorphic() {
        assert_eq!(check("(cons 1 [])", &[]).unwrap(), "[int]");
        // Element type stays an (arbitrary-numbered) variable.
        let t = check("(cons [] [])", &[]).unwrap();
        assert!(t.starts_with("[[t") && t.ends_with("]]"), "{t}");
    }

    #[test]
    fn nested_empty_literals_unify_with_context() {
        assert_eq!(check("(cat l [])", &[("l", "[[int]]")]).unwrap(), "[[int]]");
    }
}
