//! Persistent evaluation environments.
//!
//! Environments are immutable linked lists shared via [`Arc`]. Extending an
//! environment is O(1) and never invalidates existing references, which the
//! deduction rules rely on: a deduced sub-example's environment is the parent
//! example's environment extended with the lambda's binders.

use std::fmt;
use std::sync::Arc;

use crate::symbol::Symbol;
use crate::value::Value;

/// An immutable mapping from variables to values.
///
/// Lookup is linear, which is fast in practice because synthesis scopes are
/// tiny (problem parameters plus a few lambda binders).
///
/// # Examples
///
/// ```
/// use lambda2_lang::env::Env;
/// use lambda2_lang::symbol::Symbol;
/// use lambda2_lang::value::Value;
///
/// let x = Symbol::intern("x");
/// let env = Env::empty().bind(x, Value::Int(3));
/// assert_eq!(env.lookup(x), Some(&Value::Int(3)));
/// ```
#[derive(Clone, Default)]
pub struct Env(Option<Arc<EnvNode>>);

struct EnvNode {
    sym: Symbol,
    val: Value,
    next: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Returns a new environment with `sym ↦ val` added (shadowing any
    /// earlier binding of `sym`).
    pub fn bind(&self, sym: Symbol, val: Value) -> Env {
        Env(Some(Arc::new(EnvNode {
            sym,
            val,
            next: self.clone(),
        })))
    }

    /// Builds an environment from `(symbol, value)` pairs; later pairs
    /// shadow earlier ones.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Symbol, Value)>) -> Env {
        bindings
            .into_iter()
            .fold(Env::empty(), |env, (s, v)| env.bind(s, v))
    }

    /// Looks up the innermost binding of `sym`.
    pub fn lookup(&self, sym: Symbol) -> Option<&Value> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if node.sym == sym {
                return Some(&node.val);
            }
            cur = &node.next;
        }
        None
    }

    /// Iterates over visible bindings, innermost first, skipping shadowed
    /// entries.
    pub fn bindings(&self) -> Vec<(Symbol, &Value)> {
        let mut seen = Vec::new();
        let mut out = Vec::new();
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if !seen.contains(&node.sym) {
                seen.push(node.sym);
                out.push((node.sym, &node.val));
            }
            cur = &node.next;
        }
        out
    }

    /// `true` if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// A canonical fingerprint of the visible bindings, used to detect
    /// duplicate example rows. Two environments with the same visible
    /// bindings produce equal fingerprints regardless of shadowed history.
    pub fn fingerprint(&self) -> Vec<(Symbol, Value)> {
        let mut b: Vec<(Symbol, Value)> = self
            .bindings()
            .into_iter()
            .map(|(s, v)| (s, v.clone()))
            .collect();
        b.sort_by_key(|(s, _)| *s);
        b
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (s, v) in self.bindings() {
            map.entry(&s.as_str(), v);
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn bind_and_lookup() {
        let env = Env::empty()
            .bind(sym("a"), Value::Int(1))
            .bind(sym("b"), Value::Int(2));
        assert_eq!(env.lookup(sym("a")), Some(&Value::Int(1)));
        assert_eq!(env.lookup(sym("b")), Some(&Value::Int(2)));
        assert_eq!(env.lookup(sym("c")), None);
    }

    #[test]
    fn shadowing_is_innermost_wins() {
        let env = Env::empty()
            .bind(sym("x"), Value::Int(1))
            .bind(sym("x"), Value::Int(2));
        assert_eq!(env.lookup(sym("x")), Some(&Value::Int(2)));
        assert_eq!(env.bindings().len(), 1);
    }

    #[test]
    fn extension_preserves_parent() {
        let parent = Env::empty().bind(sym("p"), Value::Bool(true));
        let child = parent.bind(sym("q"), Value::Bool(false));
        assert_eq!(parent.lookup(sym("q")), None);
        assert_eq!(child.lookup(sym("p")), Some(&Value::Bool(true)));
    }

    #[test]
    fn fingerprint_ignores_shadowed_history() {
        let a = Env::empty()
            .bind(sym("x"), Value::Int(9))
            .bind(sym("x"), Value::Int(1))
            .bind(sym("y"), Value::Int(2));
        let b = Env::empty()
            .bind(sym("y"), Value::Int(2))
            .bind(sym("x"), Value::Int(1));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn from_bindings_orders_latest_last() {
        let env = Env::from_bindings([(sym("k"), Value::Int(1)), (sym("k"), Value::Int(7))]);
        assert_eq!(env.lookup(sym("k")), Some(&Value::Int(7)));
    }
}
