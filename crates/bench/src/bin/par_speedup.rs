//! **Experiment P1** — worker-pool scaling on the quick suite.
//!
//! Runs the non-hard suite under the full λ² engine — once on a single
//! worker, then across the requested pool — and verifies that every
//! compared problem yields a byte-identical program at an identical cost
//! before reporting the wall-clock speedup. This is the determinism
//! acceptance check for the parallel driver: parallelism may only change
//! *when* answers arrive, never *what* they are.
//!
//! One caveat is inherent: per-problem budgets are *wall-clock*, so on an
//! oversubscribed machine (more workers than idle cores) a problem that
//! sequentially solves near its deadline can legitimately time out under
//! contention. The identity check therefore covers the problems whose
//! sequential time leaves at least a `4 × jobs` headroom factor under the
//! budget — everything else is still run and recorded, just not gated on.
//!
//! Usage: `cargo run -p bench --release --bin par_speedup [-- --jobs N]`
//! (`--jobs` defaults to one worker per CPU).

use std::time::{Duration, Instant};

use bench::{ms, record, render_table, run_benchmarks_parallel, write_bench_json, Engine, Json};
use lambda2_bench_suite::{catalog, Benchmark};
use lambda2_synth::par::effective_jobs;

/// Default per-problem wall budget inside `run_benchmarks_parallel`.
const BUDGET: Duration = Duration::from_secs(60);

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = effective_jobs(bench::jobs_arg(&mut args).unwrap_or(0));
    let suite: Vec<Benchmark> = catalog().into_iter().filter(|b| !b.hard).collect();

    println!(
        "P1: parallel speedup over the quick suite ({} problems, engine: lambda2)\n",
        suite.len()
    );

    eprintln!("  pass 1: 1 worker...");
    let sequential = run_benchmarks_parallel(&suite, Engine::Lambda2, None, 1);

    // Only problems with scheduling headroom take part in the identity
    // and speedup comparison: a worst-case `jobs`-fold time-slicing plus
    // parallel cache/allocator pressure must still fit the wall budget.
    let headroom = BUDGET / (4 * jobs as u32);
    let compared: Vec<Benchmark> = suite
        .iter()
        .zip(&sequential)
        .filter(|(_, m)| m.solved && m.elapsed <= headroom)
        .map(|(b, _)| b.clone())
        .collect();
    let skipped = suite.len() - compared.len();
    eprintln!(
        "  pass 2: {jobs} workers over the {} problems solved within {} ms \
         ({skipped} without headroom are recorded but not gated on)...",
        compared.len(),
        ms(headroom)
    );
    let wall_n = Instant::now();
    let parallel = run_benchmarks_parallel(&compared, Engine::Lambda2, None, jobs);
    let wall_n = wall_n.elapsed();
    let wall_1: Duration = suite
        .iter()
        .zip(&sequential)
        .filter(|(b, _)| {
            compared
                .iter()
                .any(|c| c.problem.name() == b.problem.name())
        })
        .map(|(_, m)| m.elapsed)
        .sum();
    eprintln!("  pass 2 done in {} ms", ms(wall_n));

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut mismatches = 0usize;
    for (bench, seq) in suite.iter().zip(&sequential) {
        let par = parallel
            .iter()
            .find(|m| m.name == bench.problem.name())
            .map(|par| {
                let identical =
                    seq.solved == par.solved && seq.program == par.program && seq.cost == par.cost;
                if !identical {
                    mismatches += 1;
                }
                (par, identical)
            });
        rows.push(vec![
            bench.problem.name().to_string(),
            if seq.solved {
                "yes".into()
            } else {
                "no".into()
            },
            ms(seq.elapsed),
            par.map_or_else(|| "-".into(), |(p, _)| ms(p.elapsed)),
            par.map_or_else(
                || "skipped".into(),
                |(_, id)| if id { "yes".into() } else { "NO".into() },
            ),
        ]);
        let compared = par.is_some();
        let identical = par.map(|(_, id)| id);
        records.push(record(
            bench.problem.name(),
            par.map_or(seq, |(p, _)| p),
            &[
                ("compared", compared.into()),
                ("identical", identical.map_or(Json::Null, |id| id.into())),
                (
                    "sequential_elapsed_ms",
                    Json::Float(seq.elapsed.as_secs_f64() * 1e3),
                ),
            ],
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "solved",
                "t_jobs1(ms)",
                "t_jobsN(ms)",
                "identical"
            ],
            &rows
        )
    );

    let speedup = wall_1.as_secs_f64() / wall_n.as_secs_f64().max(1e-9);
    println!(
        "\nsummary: jobs={jobs}, {} compared problems, wall {} ms -> {} ms, \
         speedup {speedup:.2}x, {mismatches} mismatches",
        compared.len(),
        ms(wall_1),
        ms(wall_n)
    );

    match write_bench_json(
        "par_speedup",
        &[
            ("jobs", jobs.into()),
            ("nproc", effective_jobs(0).into()),
            ("compared", compared.len().into()),
            ("skipped_no_headroom", skipped.into()),
            ("wall_jobs1_ms", Json::Float(wall_1.as_secs_f64() * 1e3)),
            ("wall_jobsN_ms", Json::Float(wall_n.as_secs_f64() * 1e3)),
            ("speedup", Json::Float(speedup)),
            ("mismatches", mismatches.into()),
        ],
        records,
    ) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_par_speedup.json: {e}"),
    }

    if mismatches > 0 {
        eprintln!("error: {mismatches} problems differed between jobs=1 and jobs={jobs}");
        std::process::exit(1);
    }
}
