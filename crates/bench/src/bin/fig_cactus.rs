//! **Experiment F1** — the scalability ("cactus") figure.
//!
//! Runs the whole suite under the three engines and prints, for a series
//! of time budgets, how many benchmarks each engine solves within that
//! budget. The paper's claim to reproduce: λ² solves (almost) everything
//! quickly; removing deduction loses the fold/nested problems; pure
//! enumeration only manages the trivial ones.
//!
//! Usage: `cargo run -p bench --release --bin fig_cactus [-- --quick] [--jobs N]`

use std::time::Duration;

use bench::{
    jobs_arg, record, render_table, run_benchmark, run_benchmarks_parallel, write_bench_json,
    Engine, Json,
};
use lambda2_bench_suite::catalog;
use lambda2_synth::par::effective_jobs;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = effective_jobs(jobs_arg(&mut args).unwrap_or(1));
    let quick = args.iter().any(|a| a == "--quick");
    let budgets_ms: &[u64] = &[
        100, 250, 500, 1000, 2500, 5000, 10_000, 30_000, 60_000, 180_000,
    ];
    let engines = [Engine::Lambda2, Engine::NoDeduce, Engine::Baseline];
    let suite: Vec<_> = catalog()
        .into_iter()
        .filter(|b| !(quick && b.hard))
        .collect();

    // One run per (engine, benchmark); the curve is read off the recorded
    // times. The ablated engines get a smaller per-run cap: they either
    // solve fast or not at all, and full caps would cost hours.
    let mut solve_times: Vec<Vec<Option<Duration>>> = Vec::new();
    let mut records = Vec::new();
    for engine in engines {
        let cap = match (quick, engine) {
            (true, _) => Duration::from_secs(5),
            (false, Engine::Lambda2) => {
                Duration::from_millis(*budgets_ms.last().expect("budget list is nonempty"))
            }
            (false, _) => Duration::from_secs(30),
        };
        let measurements = if jobs > 1 {
            eprintln!(
                "  {engine}: running {} benchmarks across {jobs} workers...",
                suite.len()
            );
            run_benchmarks_parallel(&suite, engine, Some(cap), jobs)
        } else {
            suite
                .iter()
                .map(|bench| run_benchmark(bench, engine, Some(cap)))
                .collect()
        };
        let mut col = Vec::new();
        for m in &measurements {
            eprintln!(
                "  {engine}: [{}] {} ({:.1} ms)",
                if m.solved { "ok" } else { "--" },
                m.name,
                m.elapsed.as_secs_f64() * 1e3
            );
            records.push(record(
                &format!("{engine}/{}", m.name),
                m,
                &[("engine", engine.to_string().into())],
            ));
            col.push(m.solved.then_some(m.elapsed));
        }
        solve_times.push(col);
    }

    println!(
        "F1: benchmarks solved within time budget (of {} total)\n",
        suite.len()
    );
    let mut rows = Vec::new();
    for &budget in budgets_ms {
        let b = Duration::from_millis(budget);
        let mut row = vec![format!("{budget}")];
        for col in &solve_times {
            let n = col.iter().flatten().filter(|t| **t <= b).count();
            row.push(n.to_string());
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["budget(ms)", "lambda2", "no-deduce", "baseline"], &rows)
    );

    // ASCII cactus plot: one line per engine.
    println!("\ncactus (each column = one budget step above):");
    for (engine, col) in engines.iter().zip(&solve_times) {
        let bar: String = budgets_ms
            .iter()
            .map(|&budget| {
                let b = Duration::from_millis(budget);
                let n = col.iter().flatten().filter(|t| **t <= b).count();
                let frac = n as f64 / suite.len() as f64;
                match (frac * 8.0) as usize {
                    0 => ' ',
                    1 => '.',
                    2 => ':',
                    3 => '-',
                    4 => '=',
                    5 => '+',
                    6 => '*',
                    7 => '#',
                    _ => '@',
                }
            })
            .collect();
        println!("  {engine:>9} |{bar}|");
    }

    let budgets = Json::Arr(budgets_ms.iter().map(|&b| b.into()).collect());
    match write_bench_json(
        "fig_cactus",
        &[("quick", quick.into()), ("budgets_ms", budgets)],
        records,
    ) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_fig_cactus.json: {e}"),
    }
}
