//! **Experiment T1** — the paper's per-benchmark results table.
//!
//! For every suite benchmark: category, number of examples, whether λ²
//! synthesized a program, wall-clock time, program cost/size, and the
//! program itself. Ends with the summary statistics the paper reports in
//! prose (solve rate, median/max times).
//!
//! Usage: `cargo run -p bench --release --bin table1 [-- --quick] [--jobs N]`
//! (`--quick` skips the hard benchmarks for a fast smoke run; `--jobs`
//! fans the problems across a worker pool, `0` = one per CPU — the
//! per-problem numbers are identical to a sequential run).

use bench::{
    jobs_arg, ms, record, render_table, run_benchmark, run_benchmarks_parallel, write_bench_json,
    Engine,
};
use lambda2_bench_suite::{catalog, Benchmark};
use lambda2_synth::par::effective_jobs;
use lambda2_synth::Measurement;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = effective_jobs(jobs_arg(&mut args).unwrap_or(1));
    let quick = args.iter().any(|a| a == "--quick");
    let suite: Vec<Benchmark> = catalog()
        .into_iter()
        .filter(|b| !(quick && b.hard))
        .collect();

    println!("T1: per-benchmark synthesis results (engine: lambda2)\n");
    let measurements: Vec<Measurement> = if jobs > 1 {
        eprintln!(
            "  running {} benchmarks across {jobs} workers...",
            suite.len()
        );
        run_benchmarks_parallel(&suite, Engine::Lambda2, None, jobs)
    } else {
        suite
            .iter()
            .map(|bench| {
                let m = run_benchmark(bench, Engine::Lambda2, None);
                eprintln!(
                    "  [{}] {} ({})",
                    if m.solved { "ok" } else { "--" },
                    m.name,
                    ms(m.elapsed)
                );
                m
            })
            .collect()
    };

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut times = Vec::new();
    let mut solved = 0usize;
    let total = suite.len();
    for (bench, m) in suite.iter().zip(&measurements) {
        records.push(record(
            &m.name,
            m,
            &[
                ("category", bench.category.to_string().into()),
                ("hard", bench.hard.into()),
            ],
        ));
        if m.solved {
            solved += 1;
            times.push(m.elapsed);
        }
        rows.push(vec![
            m.name.clone(),
            bench.category.to_string(),
            m.examples.to_string(),
            if m.solved { "yes".into() } else { "no".into() },
            ms(m.elapsed),
            if m.solved {
                m.cost.to_string()
            } else {
                "-".into()
            },
            if m.solved {
                m.size.to_string()
            } else {
                "-".into()
            },
            if m.solved {
                m.program.clone()
            } else {
                "(timeout/exhausted)".into()
            },
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "category",
                "#ex",
                "solved",
                "time(ms)",
                "cost",
                "size",
                "program"
            ],
            &rows,
        )
    );

    times.sort();
    let median = times.get(times.len() / 2).copied().unwrap_or_default();
    let max = times.last().copied().unwrap_or_default();
    println!(
        "\nsummary: solved {solved}/{total} ({:.0}%), median {} ms, max {} ms",
        100.0 * solved as f64 / total.max(1) as f64,
        ms(median),
        ms(max),
    );

    match write_bench_json(
        "table1",
        &[
            ("quick", quick.into()),
            ("engine", "lambda2".into()),
            ("jobs", jobs.into()),
        ],
        records,
    ) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_table1.json: {e}"),
    }
}
