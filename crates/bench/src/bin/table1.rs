//! **Experiment T1** — the paper's per-benchmark results table.
//!
//! For every suite benchmark: category, number of examples, whether λ²
//! synthesized a program, wall-clock time, program cost/size, and the
//! program itself. Ends with the summary statistics the paper reports in
//! prose (solve rate, median/max times).
//!
//! Usage: `cargo run -p bench --release --bin table1 [-- --quick]`
//! (`--quick` skips the hard benchmarks for a fast smoke run).

use bench::{ms, record, render_table, run_benchmark, write_bench_json, Engine};
use lambda2_bench_suite::catalog;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let suite = catalog();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut times = Vec::new();
    let mut solved = 0usize;
    let mut total = 0usize;

    println!("T1: per-benchmark synthesis results (engine: lambda2)\n");
    for bench in &suite {
        if quick && bench.hard {
            continue;
        }
        total += 1;
        let m = run_benchmark(bench, Engine::Lambda2, None);
        records.push(record(
            &m.name,
            &m,
            &[
                ("category", bench.category.to_string().into()),
                ("hard", bench.hard.into()),
            ],
        ));
        if m.solved {
            solved += 1;
            times.push(m.elapsed);
        }
        eprintln!(
            "  [{}] {} ({})",
            if m.solved { "ok" } else { "--" },
            m.name,
            ms(m.elapsed)
        );
        rows.push(vec![
            m.name.clone(),
            bench.category.to_string(),
            m.examples.to_string(),
            if m.solved { "yes".into() } else { "no".into() },
            ms(m.elapsed),
            if m.solved {
                m.cost.to_string()
            } else {
                "-".into()
            },
            if m.solved {
                m.size.to_string()
            } else {
                "-".into()
            },
            if m.solved {
                m.program
            } else {
                "(timeout/exhausted)".into()
            },
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "category",
                "#ex",
                "solved",
                "time(ms)",
                "cost",
                "size",
                "program"
            ],
            &rows,
        )
    );

    times.sort();
    let median = times.get(times.len() / 2).copied().unwrap_or_default();
    let max = times.last().copied().unwrap_or_default();
    println!(
        "\nsummary: solved {solved}/{total} ({:.0}%), median {} ms, max {} ms",
        100.0 * solved as f64 / total.max(1) as f64,
        ms(median),
        ms(max),
    );

    match write_bench_json(
        "table1",
        &[("quick", quick.into()), ("engine", "lambda2".into())],
        records,
    ) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_table1.json: {e}"),
    }
}
