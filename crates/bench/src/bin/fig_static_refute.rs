//! **Experiment F6** — the static-refutation ablation.
//!
//! Per benchmark: λ² with the abstract-interpretation refutation pre-pass
//! on vs off. The analyzer's checks are strictly weaker than the deduction
//! rules they shadow, so the synthesized program, its cost, and every
//! search counter except refutation *attribution* must be identical —
//! this binary asserts exactly that (any divergence is a soundness bug)
//! and reports how many refutations the pre-pass claims per problem.
//!
//! Enumerated terms do **not** drop with the analyzer on: every statically
//! refuted expansion would have been refuted by deduction at the same
//! planning site, so the pre-pass moves accounting (and skips the
//! per-combinator deduction work), it does not shrink the search frontier.
//!
//! Both arms pin `static_prune(false)`: this experiment isolates the
//! *attribution* tier, whose checks are strictly weaker than deduction.
//! The pruning tier (on by default) genuinely shrinks the frontier and is
//! measured separately by `fig_static_prune`.
//!
//! Usage: `cargo run -p bench --release --bin fig_static_refute [-- --quick]`

use std::panic::{catch_unwind, AssertUnwindSafe};

use bench::{measurement_of, ms, options_for, record, render_table, write_bench_json};
use lambda2_bench_suite::{catalog, Benchmark};
use lambda2_synth::{Measurement, Synthesizer};

fn run(bench: &Benchmark, analysis: bool) -> Measurement {
    let options = options_for(bench, None);
    let budget = options.timeout.expect("options_for always sets a timeout");
    let problem = &bench.problem;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        Synthesizer::with_options(options.clone())
            .static_analysis(analysis)
            .static_prune(false)
            .synthesize(problem)
    }));
    match outcome {
        Ok(result) => measurement_of(problem.name(), problem.examples().len(), &result, budget),
        Err(_) => panic!("synthesis panicked on {}", problem.name()),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let suite: Vec<_> = catalog()
        .into_iter()
        .filter(|b| !(quick && b.hard))
        .collect();

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut static_total = 0u64;
    let mut divergences = 0usize;

    for bench in &suite {
        let on = run(bench, true);
        let off = run(bench, false);
        // Identity check: any difference in result or search shape is a
        // false (or missed) refutation.
        let identical = on.solved == off.solved
            && on.program == off.program
            && on.cost == off.cost
            && on.stats.popped == off.stats.popped
            && on.stats.enumerated_terms == off.stats.enumerated_terms
            && on.stats.refuted + on.stats.static_refutations == off.stats.refuted;
        if !identical {
            divergences += 1;
            eprintln!(
                "  DIVERGENCE on {}: on=({}, cost {}, refuted {}+{}) off=({}, cost {}, refuted {})",
                bench.problem.name(),
                on.program,
                on.cost,
                on.stats.refuted,
                on.stats.static_refutations,
                off.program,
                off.cost,
                off.stats.refuted,
            );
        }
        static_total += on.stats.static_refutations;
        records.push(record(
            &format!("static-on/{}", on.name),
            &on,
            &[("analysis", true.into())],
        ));
        records.push(record(
            &format!("static-off/{}", off.name),
            &off,
            &[("analysis", false.into())],
        ));
        eprintln!(
            "  {}: {} static + {} deduced refutations (off: {} deduced), {:.1} ms vs {:.1} ms",
            bench.problem.name(),
            on.stats.static_refutations,
            on.stats.refuted,
            off.stats.refuted,
            on.elapsed.as_secs_f64() * 1e3,
            off.elapsed.as_secs_f64() * 1e3,
        );
        let share = if off.stats.refuted == 0 {
            "-".to_owned()
        } else {
            format!(
                "{:.0}%",
                100.0 * on.stats.static_refutations as f64 / off.stats.refuted as f64
            )
        };
        rows.push(vec![
            bench.problem.name().to_owned(),
            on.stats.static_refutations.to_string(),
            on.stats.refuted.to_string(),
            off.stats.refuted.to_string(),
            share,
            if on.solved {
                ms(on.elapsed)
            } else {
                "timeout".into()
            },
            if off.solved {
                ms(off.elapsed)
            } else {
                "timeout".into()
            },
        ]);
    }

    println!("F6: static-refutation ablation (analyzer on vs off)\n");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "static",
                "deduced(on)",
                "deduced(off)",
                "static share",
                "on(ms)",
                "off(ms)",
            ],
            &rows,
        )
    );
    println!(
        "\nsummary: {static_total} refutations claimed by the pre-pass across \
         {} benchmarks; {divergences} divergences (must be 0); enumerated \
         terms are identical on/off by construction (attribution-only pruning)",
        suite.len()
    );

    match write_bench_json("static_refute", &[("quick", quick.into())], records) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_static_refute.json: {e}"),
    }
    assert_eq!(divergences, 0, "static analyzer diverged from deduction");
    assert!(static_total > 0, "the pre-pass refuted nothing suite-wide");
}
