//! **Experiment S1** — serve-daemon load generation.
//!
//! Boots an in-process `l2 serve` daemon, then sweeps offered
//! concurrency over a mix of quick problems and reports, per level:
//! request-latency p50/p99, throughput, and the shed rate at the
//! admission queue. The robustness claims this exercises: latency and
//! memory stay bounded as offered load exceeds capacity (excess requests
//! are shed with structured `overloaded` responses, not queued without
//! limit), and every non-shed request completes with a report.
//!
//! Writes `results/BENCH_serve.json` in the measurement shape
//! `l2 corpus ingest` accepts.
//!
//! With `--access-log <path>` (optionally plus `--slow-trace-ms <n>
//! --slow-trace-dir <dir>`) the sweep also exercises the daemon's
//! observability plane, then self-verifies the log after the drain:
//! the offline analysis must see every request, agree with the daemon's
//! own shed count exactly, and report p50 <= p99.
//!
//! Usage: `cargo run -p bench --release --bin serve_bench [-- --quick]
//! [-- --access-log <path> --slow-trace-ms <n> --slow-trace-dir <dir>]`

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use bench::{render_table, write_bench_json, Json};
use lambda2_synth::serve::Client;
use lambda2_synth::{load_access_log, AccessReport, Measurement, ServeConfig, Server, Stats};

/// Quick problems with default libraries in `.l2` surface syntax — the
/// same documents `l2 client` sends from files. All solve in well under
/// 100ms under default options, so the sweep measures queueing and
/// dispatch, not one problem's search time.
const PROBLEMS: &[(&str, &str)] = &[
    (
        "ident",
        "(problem ident
  (params (l [int]))
  (returns [int])
  (example ([1 2]) [1 2])
  (example ([]) [])
  (example ([3]) [3]))",
    ),
    (
        "head",
        "(problem head
  (params (l [int]))
  (returns int)
  (example ([3 2]) 3)
  (example ([7]) 7)
  (example ([9 1 4]) 9))",
    ),
    (
        "rotate",
        "(problem rotate
  (params (l [int]))
  (returns [int])
  (example ([5]) [5])
  (example ([1 7]) [7 1])
  (example ([1 7 3]) [7 3 1]))",
    ),
    (
        "incrs",
        "(problem incrs
  (params (l [int]))
  (returns [int])
  (example ([]) [])
  (example ([1 2]) [2 3])
  (example ([0 4 7]) [1 5 8]))",
    ),
];

/// One client thread's accounting for a level.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    ok: u64,
    shed: u64,
    failed: u64,
}

fn synth_request(name: &str, source: &str, timeout_ms: u64) -> Json {
    Json::obj([
        ("v", 1u64.into()),
        ("op", "synth".into()),
        ("id", name.into()),
        ("problem", source.into()),
        ("timeout_ms", timeout_ms.into()),
    ])
}

/// `latencies` sorted ascending; quantile at histogram-free precision.
fn quantile_us(latencies: &[u64], q: f64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
    latencies[idx]
}

fn main() {
    let mut quick = false;
    let mut access_log: Option<PathBuf> = None;
    let mut slow_trace_ms: Option<u64> = None;
    let mut slow_trace_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--access-log" => {
                access_log = Some(PathBuf::from(
                    args.next().expect("--access-log requires a path"),
                ));
            }
            "--slow-trace-ms" => {
                slow_trace_ms = Some(
                    args.next()
                        .expect("--slow-trace-ms requires a count")
                        .parse()
                        .expect("--slow-trace-ms: whole milliseconds"),
                );
            }
            "--slow-trace-dir" => {
                slow_trace_dir = Some(PathBuf::from(
                    args.next().expect("--slow-trace-dir requires a path"),
                ));
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    let workers = 2usize;
    let queue = 4usize;
    let timeout_ms = 10_000u64;
    let per_client = if quick { 5u64 } else { 10 };
    let levels: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_capacity: queue,
        default_timeout: Duration::from_millis(timeout_ms),
        access_log: access_log.clone(),
        slow_trace_ms,
        slow_trace_dir,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.local_addr().to_owned();
    let control = server.control();
    let daemon = thread::spawn(move || server.run().expect("serve loop"));

    println!(
        "S1: serve-daemon load sweep ({workers} workers, queue {queue}, \
         {} problems x {per_client} requests per client)\n",
        PROBLEMS.len()
    );

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &level in levels {
        let wall = Instant::now();
        let (tx, rx) = mpsc::channel::<Tally>();
        thread::scope(|scope| {
            for c in 0..level {
                let tx = tx.clone();
                let addr = &addr;
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    for r in 0..per_client {
                        // Round-robin the mix, offset per client.
                        let (name, source) = PROBLEMS[(c + r as usize) % PROBLEMS.len()];
                        let started = Instant::now();
                        // A fresh connection per request, like the CLI
                        // client; no retries — sheds are the datum here.
                        let outcome = Client::connect(addr)
                            .and_then(|mut c| c.call(&synth_request(name, source, timeout_ms)));
                        let elapsed_us = started.elapsed().as_micros() as u64;
                        match outcome {
                            Ok(resp) => match resp.get("status").and_then(Json::as_str) {
                                Some("ok") => {
                                    tally.ok += 1;
                                    tally.latencies_us.push(elapsed_us);
                                }
                                Some("overloaded") => tally.shed += 1,
                                _ => {
                                    eprintln!("  {name}: {resp}");
                                    tally.failed += 1;
                                }
                            },
                            Err(e) => {
                                eprintln!("  {name}: {e}");
                                tally.failed += 1;
                            }
                        }
                    }
                    let _ = tx.send(tally);
                });
            }
        });
        drop(tx);
        let mut latencies = Vec::new();
        let (mut ok, mut shed, mut failed) = (0u64, 0u64, 0u64);
        for tally in rx {
            latencies.extend(tally.latencies_us);
            ok += tally.ok;
            shed += tally.shed;
            failed += tally.failed;
        }
        latencies.sort_unstable();
        let wall = wall.elapsed();
        let total = level as u64 * per_client;
        let p50_us = quantile_us(&latencies, 0.5);
        let p99_us = quantile_us(&latencies, 0.99);
        let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);
        let shed_rate = shed as f64 / total as f64;
        rows.push(vec![
            level.to_string(),
            total.to_string(),
            ok.to_string(),
            shed.to_string(),
            format!("{:.1}", p50_us as f64 / 1e3),
            format!("{:.1}", p99_us as f64 / 1e3),
            format!("{throughput:.1}"),
            format!("{:.0}%", shed_rate * 100.0),
        ]);
        // Measurement-shaped so `l2 corpus ingest` folds the report in;
        // the load-sweep numbers ride as extra fields.
        let m = Measurement {
            name: format!("serve_load_c{level}"),
            elapsed: Duration::from_micros(p50_us),
            solved: failed == 0,
            cost: 0,
            size: 0,
            program: String::new(),
            examples: 0,
            stats: Stats::default(),
            error: None,
        };
        records.push(bench::record(
            &format!("serve/c{level}"),
            &m,
            &[
                ("concurrency", level.into()),
                ("requests", total.into()),
                ("completed", ok.into()),
                ("shed", shed.into()),
                ("client_errors", failed.into()),
                ("p50_ms", Json::Float(p50_us as f64 / 1e3)),
                ("p99_ms", Json::Float(p99_us as f64 / 1e3)),
                ("throughput_rps", Json::Float(throughput)),
                ("shed_rate", Json::Float(shed_rate)),
            ],
        ));
        assert_eq!(
            failed, 0,
            "level {level}: {failed} request(s) failed outright — every \
             non-shed request must complete with a report"
        );
    }

    control.store(true, Ordering::SeqCst);
    let summary = daemon.join().expect("server thread");

    println!(
        "{}",
        render_table(
            &[
                "clients",
                "reqs",
                "ok",
                "shed",
                "p50 ms",
                "p99 ms",
                "rps",
                "shed rate",
            ],
            &rows,
        )
    );
    println!(
        "daemon: {} accepted, {} solved, {} shed, {} crashed, drained in {:.1} ms",
        summary.accepted,
        summary.solved,
        summary.shed,
        summary.crashed,
        summary.drain_elapsed.as_secs_f64() * 1e3,
    );
    assert_eq!(summary.crashed, 0, "no request may crash the daemon");

    if let Some(log_path) = &access_log {
        let records = load_access_log(log_path).expect("parse every access-log line");
        let report = AccessReport::analyze(&records);
        println!(
            "access log: {} records, shed {}, service p50/p99 {:.1}/{:.1} ms",
            report.requests,
            report.shed,
            report.service_ms(0.5),
            report.service_ms(0.99),
        );
        assert!(report.requests > 0, "access log must see the sweep");
        assert_eq!(
            report.shed, summary.shed,
            "offline shed count must match the daemon's own accounting"
        );
        assert!(
            report.service_ms(0.5) <= report.service_ms(0.99),
            "service p50 must not exceed p99"
        );
    }

    let meta: Vec<(&'static str, Json)> = vec![
        ("workers", workers.into()),
        ("queue_capacity", queue.into()),
        ("timeout_ms", timeout_ms.into()),
        ("per_client", per_client.into()),
        ("quick", quick.into()),
    ];
    match write_bench_json("serve", &meta, records) {
        Ok(path) => eprintln!("report -> {}", path.display()),
        Err(e) => {
            eprintln!("error: writing report: {e}");
            std::process::exit(1);
        }
    }
}
