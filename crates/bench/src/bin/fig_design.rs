//! **Design ablations** — the reproduction's own engineering choices,
//! measured (DESIGN.md §5 calls these out):
//!
//! * **trace probes** (deduction-emitted dedup environments),
//! * **synthetic probes** (perturbation dedup environments),
//! * **variables-only collections** (vs cost-3 collection expressions),
//! * **blind-hole expansion** (unrestricted hypothesis grammar).
//!
//! Each configuration runs a representative benchmark slice; the table
//! shows what each mechanism buys (or costs). Expected shape: disabling
//! either probe family loses correct solutions on fold-shaped problems
//! (the cheapest row-equivalent term wins and fails verification, pushing
//! the search into timeouts or costlier answers); richer collections and
//! blind-hole expansion only burn time on this suite.
//!
//! Usage: `cargo run -p bench --release --bin fig_design`

use std::time::Duration;

use bench::{
    measurement_of_isolated, ms, record, render_table, synthesize_isolated, write_bench_json,
    RunError,
};
use lambda2_bench_suite::by_name;
use lambda2_synth::{SearchOptions, Synthesizer};

const SLICE: &[&str] = &[
    "sum", "reverse", "evens", "droplast", "multlast", "sumt", "flattenl", "sums", "maxes",
];

struct Config {
    name: &'static str,
    apply: fn(&mut SearchOptions),
}

const CONFIGS: &[Config] = &[
    Config {
        name: "full",
        apply: |_| {},
    },
    Config {
        name: "no-trace-probes",
        apply: |o| o.trace_probes = false,
    },
    Config {
        name: "no-synthetic-probes",
        apply: |o| o.enum_limits.synthetic_probes = false,
    },
    Config {
        name: "no-probes-at-all",
        apply: |o| {
            o.trace_probes = false;
            o.enum_limits.synthetic_probes = false;
        },
    },
    Config {
        name: "collections<=3",
        apply: |o| o.max_collection_cost = 3,
    },
    Config {
        name: "blind-holes-on",
        apply: |o| o.expand_blind_holes = true,
    },
];

fn main() {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in SLICE {
        let Some(bench) = by_name(name) else {
            eprintln!("warning: unknown benchmark `{name}` — skipping");
            continue;
        };
        let mut row = vec![(*name).to_owned()];
        for config in CONFIGS {
            let mut options = bench.tune(SearchOptions::default());
            options.timeout = Some(Duration::from_secs(60));
            (config.apply)(&mut options);
            let result = synthesize_isolated(&Synthesizer::with_options(options), &bench.problem);
            records.push(record(
                &format!("{name}/{}", config.name),
                &measurement_of_isolated(
                    name,
                    bench.problem.examples().len(),
                    &result,
                    Duration::from_secs(60),
                ),
                &[("config", config.name.into())],
            ));
            let cell = match &result {
                Ok(s) => {
                    // A solution that fails held-out generalization is
                    // still *sound* (it fits the examples) but reveals the
                    // config found a cheaper fitting program than the
                    // intended one — mark the cost.
                    format!("{} (c{})", ms(s.elapsed), s.cost)
                }
                Err(RunError::Synth(lambda2_synth::SynthError::Timeout)) => "timeout".into(),
                Err(other) => other.to_string(),
            };
            eprintln!("  {name} / {}: {cell}", config.name);
            row.push(cell);
        }
        rows.push(row);
    }

    println!("Design ablations: time(ms) and solution cost per configuration\n");
    let mut header: Vec<&str> = vec!["benchmark"];
    header.extend(CONFIGS.iter().map(|c| c.name));
    println!("{}", render_table(&header, &rows));
    println!(
        "\nreading guide: `full` is the shipped configuration; a cell like\n\
         `timeout` or a larger cost than `full`'s shows what that mechanism\n\
         contributes. `collections<=3` and `blind-holes-on` only enlarge the\n\
         space on this suite."
    );

    match write_bench_json("fig_design", &[], records) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_fig_design.json: {e}"),
    }
}
