//! **Experiment F7** — the static-pruning ablation.
//!
//! Per benchmark: λ² with the pruning tier of the abstract-interpretation
//! pre-pass on (the default) vs off (`--no-static-prune`). The pruning
//! tier refutes hypotheses deduction would keep, so — unlike the
//! attribution ablation (`fig_static_refute`) — the search frontier
//! genuinely shrinks: `enumerated_terms` and `popped` may only *drop*
//! with pruning on, and must drop *strictly* on the duplicate-bearing
//! problem family built for it. The synthesized program and its cost must
//! stay byte-identical — pruning removes only refutable work, never the
//! minimal solution. This binary asserts all of that and reports the
//! per-problem deltas plus per-domain pruned-refutation counts.
//!
//! Usage: `cargo run -p bench --release --bin fig_static_prune [-- --quick]`
//!
//! `--quick` skips `hard` problems (CI runs quick; the committed
//! `results/BENCH_static_prune.json` is a quick run).

use std::panic::{catch_unwind, AssertUnwindSafe};

use bench::{measurement_of, ms, options_for, record, render_table, write_bench_json, Json};
use lambda2_bench_suite::{catalog, Benchmark};
use lambda2_synth::analyze::{Tier, DOMAIN_ORDER};
use lambda2_synth::{Measurement, Synthesizer};

fn run(bench: &Benchmark, prune: bool) -> Measurement {
    let options = options_for(bench, None);
    let budget = options.timeout.expect("options_for always sets a timeout");
    let problem = &bench.problem;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        Synthesizer::with_options(options.clone())
            .static_prune(prune)
            .synthesize(problem)
    }));
    match outcome {
        Ok(result) => measurement_of(problem.name(), problem.examples().len(), &result, budget),
        Err(_) => panic!("synthesis panicked on {}", problem.name()),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let suite: Vec<_> = catalog()
        .into_iter()
        .filter(|b| !(quick && b.hard))
        .collect();

    // One pruning-tier domain exists today (cardinality); attribute the
    // whole pruned count to it. If a second pruning domain lands, this
    // needs the per-domain metrics histogram instead — the assert below
    // makes that impossible to miss.
    let pruning_domains: Vec<_> = DOMAIN_ORDER
        .iter()
        .filter(|d| d.tier() == Tier::Pruning)
        .collect();
    assert_eq!(
        pruning_domains.len(),
        1,
        "per-domain attribution assumes a single pruning domain"
    );
    let domain = pruning_domains[0].name();

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut pruned_total = 0u64;
    let mut strict_drops = 0usize;
    let mut divergences = 0usize;
    let mut wall_on_ms = 0.0f64;
    let mut wall_off_ms = 0.0f64;

    for bench in &suite {
        let on = run(bench, true);
        let off = run(bench, false);
        // Identity check: pruning may shrink the search but must not
        // change its outcome.
        let identical = on.solved == off.solved
            && on.program == off.program
            && on.cost == off.cost
            && on.stats.enumerated_terms <= off.stats.enumerated_terms
            && on.stats.popped <= off.stats.popped
            && off.stats.pruned_refutations == 0;
        if !identical {
            divergences += 1;
            eprintln!(
                "  DIVERGENCE on {}: on=({}, cost {}, terms {}, pops {}) \
                 off=({}, cost {}, terms {}, pops {}, pruned {})",
                bench.problem.name(),
                on.program,
                on.cost,
                on.stats.enumerated_terms,
                on.stats.popped,
                off.program,
                off.cost,
                off.stats.enumerated_terms,
                off.stats.popped,
                off.stats.pruned_refutations,
            );
        }
        let strict = on.stats.enumerated_terms < off.stats.enumerated_terms;
        if strict {
            strict_drops += 1;
        }
        pruned_total += on.stats.pruned_refutations;
        wall_on_ms += on.elapsed.as_secs_f64() * 1e3;
        wall_off_ms += off.elapsed.as_secs_f64() * 1e3;
        for (label, m, prune) in [("prune-on", &on, true), ("prune-off", &off, false)] {
            records.push(record(
                &format!("{label}/{}", m.name),
                m,
                &[
                    ("prune", prune.into()),
                    (
                        "pruned_domains",
                        Json::obj([(domain, m.stats.pruned_refutations.into())]),
                    ),
                ],
            ));
        }
        eprintln!(
            "  {}: {} pruned ({}), terms {} -> {}{}, {:.1} ms vs {:.1} ms",
            bench.problem.name(),
            on.stats.pruned_refutations,
            domain,
            off.stats.enumerated_terms,
            on.stats.enumerated_terms,
            if strict { " (strict)" } else { "" },
            on.elapsed.as_secs_f64() * 1e3,
            off.elapsed.as_secs_f64() * 1e3,
        );
        rows.push(vec![
            bench.problem.name().to_owned(),
            on.stats.pruned_refutations.to_string(),
            off.stats.enumerated_terms.to_string(),
            on.stats.enumerated_terms.to_string(),
            off.stats.popped.to_string(),
            on.stats.popped.to_string(),
            if on.solved {
                ms(on.elapsed)
            } else {
                "timeout".into()
            },
            if off.solved {
                ms(off.elapsed)
            } else {
                "timeout".into()
            },
        ]);
    }

    println!("F7: static-pruning ablation (pruning tier on vs off)\n");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "pruned",
                "terms(off)",
                "terms(on)",
                "pops(off)",
                "pops(on)",
                "on(ms)",
                "off(ms)",
            ],
            &rows,
        )
    );
    println!(
        "\nsummary: {pruned_total} {domain} refutations pruned across {} benchmarks; \
         strict enumerated-term drop in {strict_drops}; wall {:.0} ms on vs {:.0} ms off; \
         {divergences} divergences (must be 0)",
        suite.len(),
        wall_on_ms,
        wall_off_ms,
    );

    match write_bench_json("static_prune", &[("quick", quick.into())], records) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_static_prune.json: {e}"),
    }
    assert_eq!(divergences, 0, "pruning changed a synthesis outcome");
    assert!(pruned_total > 0, "the pruning tier refuted nothing");
    assert!(
        strict_drops >= 10,
        "pruning strictly shrank only {strict_drops} problems (need 10)"
    );
}
