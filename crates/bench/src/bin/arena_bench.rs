//! **Experiment A1** — term-core microstructure across the quick suite.
//!
//! Runs the non-hard catalog sequentially under the full λ² engine with
//! metrics on and aggregates the instruments that the arena/hash-consing
//! refactor targets: per-pop priority (`pop_cost`), enumeration-store
//! footprint (`store_bytes`/`store_terms`), and enumeration latency, plus
//! total wall time. Running it before and after a representation change
//! gives a like-for-like comparison of the enumeration hot path.
//!
//! Usage: `cargo run -p bench --release --bin arena_bench
//! [-- --label NAME] [-- --baseline results/BENCH_arena.json]`
//!
//! `--baseline` embeds a previously written report under `"baseline"`, so
//! the committed `BENCH_arena.json` carries both sides of the comparison.

use std::time::Duration;

use bench::{ms, record, render_table, run_benchmark, write_bench_json, Engine, Json};
use lambda2_bench_suite::{catalog, Benchmark};
use lambda2_synth::obs::json;
use lambda2_synth::obs::metrics::SearchMetrics;

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    args.remove(at);
    if at < args.len() {
        Some(args.remove(at))
    } else {
        eprintln!("error: {flag} requires a value");
        std::process::exit(2);
    }
}

fn hist_summary(h: &lambda2_synth::obs::metrics::Histogram) -> Json {
    let mut pairs = vec![
        ("count", h.count().into()),
        ("sum", h.sum().into()),
        (
            "mean",
            h.mean()
                .map_or(Json::Null, |m| Json::Float((m * 1000.0).round() / 1000.0)),
        ),
    ];
    for (name, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
        pairs.push((name, h.quantile(q).map_or(Json::Null, Into::into)));
    }
    pairs.push(("max", h.max().map_or(Json::Null, Into::into)));
    Json::obj(pairs)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let label = flag_value(&mut args, "--label").unwrap_or_else(|| "current".to_owned());
    let baseline = flag_value(&mut args, "--baseline");

    let suite: Vec<Benchmark> = catalog().into_iter().filter(|b| !b.hard).collect();
    println!(
        "A1: term-core microstructure over the quick suite ({} problems, label: {label})\n",
        suite.len()
    );

    let mut merged = SearchMetrics::new();
    let mut wall = Duration::ZERO;
    let mut solved = 0usize;
    let mut enumerated: u64 = 0;
    let mut popped: u64 = 0;
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for bench in &suite {
        let m = run_benchmark(bench, Engine::Lambda2, None);
        wall += m.elapsed;
        if m.solved {
            solved += 1;
        }
        enumerated += m.stats.enumerated_terms;
        popped += m.stats.popped;
        merged.merge(&m.stats.metrics);
        rows.push(vec![
            bench.problem.name().to_string(),
            if m.solved { "yes".into() } else { "NO".into() },
            ms(m.elapsed),
            m.stats.enumerated_terms.to_string(),
            m.stats
                .metrics
                .store_bytes
                .max()
                .map_or_else(|| "-".into(), |b| format!("{}", b / 1024)),
        ]);
        records.push(record(bench.problem.name(), &m, &[]));
    }

    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "solved",
                "wall(ms)",
                "enum_terms",
                "peak_store(KiB)"
            ],
            &rows
        )
    );
    println!(
        "\nsummary: {solved}/{} solved, wall {} ms, {enumerated} terms enumerated, {popped} pops",
        suite.len(),
        ms(wall)
    );

    let mut fields = vec![
        ("label", Json::Str(label)),
        ("problems", suite.len().into()),
        ("solved", solved.into()),
        ("wall_ms", Json::Float(wall.as_secs_f64() * 1e3)),
        ("enumerated_terms", enumerated.into()),
        ("popped", popped.into()),
        ("pop_cost", hist_summary(&merged.pop_cost)),
        ("store_bytes", hist_summary(&merged.store_bytes)),
        ("store_terms", hist_summary(&merged.store_terms)),
        ("enumerate_us", hist_summary(&merged.enumerate_us)),
        ("verify_us", hist_summary(&merged.verify_us)),
    ];
    if let Some(path) = baseline {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| json::parse(&s))
        {
            Ok(prior) => fields.push(("baseline", prior)),
            Err(e) => {
                eprintln!("error: --baseline {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    match write_bench_json("arena", &fields, records) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_arena.json: {e}"),
    }
}
