//! **Experiment F2** — the deduction ablation.
//!
//! Per benchmark: λ² time vs λ²-without-deduction time, and the slowdown
//! factor. The paper's claim to reproduce: deduction buys orders of
//! magnitude on fold-shaped and nested problems (without it, most of them
//! stop being solvable at all within the budget).
//!
//! Usage: `cargo run -p bench --release --bin fig_ablation [-- --quick]`

use bench::{ms, record, render_table, run_benchmark, write_bench_json, Engine};
use lambda2_bench_suite::catalog;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let suite: Vec<_> = catalog()
        .into_iter()
        .filter(|b| !(quick && b.hard))
        .collect();

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut both = 0usize;
    let mut only_full = 0usize;
    let mut speedups = Vec::new();

    for bench in &suite {
        let full = run_benchmark(bench, Engine::Lambda2, None);
        let ablated = run_benchmark(bench, Engine::NoDeduce, None);
        records.push(record(
            &format!("lambda2/{}", full.name),
            &full,
            &[("engine", "lambda2".into())],
        ));
        records.push(record(
            &format!("no-deduce/{}", ablated.name),
            &ablated,
            &[("engine", "no-deduce".into())],
        ));
        eprintln!(
            "  {}: full {} ({:.1} ms), no-deduce {} ({:.1} ms)",
            bench.problem.name(),
            if full.solved { "ok" } else { "--" },
            full.elapsed.as_secs_f64() * 1e3,
            if ablated.solved { "ok" } else { "--" },
            ablated.elapsed.as_secs_f64() * 1e3,
        );
        let speedup = match (full.solved, ablated.solved) {
            (true, true) => {
                both += 1;
                let s = ablated.elapsed.as_secs_f64() / full.elapsed.as_secs_f64().max(1e-9);
                speedups.push(s);
                format!("{s:.1}x")
            }
            (true, false) => {
                only_full += 1;
                "unsolved w/o deduction".into()
            }
            (false, true) => "ablation only (!)".into(),
            (false, false) => "neither".into(),
        };
        rows.push(vec![
            bench.problem.name().to_owned(),
            if full.solved {
                ms(full.elapsed)
            } else {
                "timeout".into()
            },
            if ablated.solved {
                ms(ablated.elapsed)
            } else {
                "timeout".into()
            },
            speedup,
        ]);
    }

    println!("F2: deduction ablation (lambda2 vs no-deduce)\n");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "lambda2(ms)",
                "no-deduce(ms)",
                "deduction speedup"
            ],
            &rows,
        )
    );
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("no NaN speedups"));
    let geo: f64 = if speedups.is_empty() {
        1.0
    } else {
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp()
    };
    println!(
        "\nsummary: both solved on {both} benchmarks (geo-mean speedup {geo:.1}x); \
         {only_full} benchmarks become unsolvable without deduction"
    );

    match write_bench_json("fig_ablation", &[("quick", quick.into())], records) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_fig_ablation.json: {e}"),
    }
}
