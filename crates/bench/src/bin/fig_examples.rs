//! **Experiment F3** — sensitivity to the number of examples.
//!
//! For a selection of single-parameter benchmarks, sweeps the number of
//! generated examples k and reports synthesis time and whether the
//! synthesized program generalizes (agrees with the reference on held-out
//! inputs). The paper's claim to reproduce: a handful of well-chosen
//! examples suffices; too few examples yield overfitted programs, and
//! more examples cost little extra time (deduction scales with rows).
//!
//! Usage: `cargo run -p bench --release --bin fig_examples`

use std::time::Duration;

use bench::{
    measurement_of_isolated, ms, options_for, record, render_table, synthesize_isolated,
    write_bench_json,
};
use lambda2_bench_suite::by_name;
use lambda2_bench_suite::generators::example_sweep;
use lambda2_lang::eval::DEFAULT_FUEL;
use lambda2_synth::Synthesizer;

const PROBLEMS: &[&str] = &["sum", "length", "reverse", "incr", "evens", "sumt", "sums"];
const KS: &[usize] = &[1, 2, 3, 4, 6, 8, 12];
const SEED: u64 = 20150603; // the paper's publication date

fn main() {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for name in PROBLEMS {
        let Some(bench) = by_name(name) else {
            eprintln!("warning: unknown benchmark `{name}` — skipping");
            continue;
        };
        let reference = bench.reference_program();
        for &k in KS {
            let Some(problem) = example_sweep(&bench, k, SEED) else {
                continue;
            };
            let mut options = options_for(&bench, Some(Duration::from_secs(20)));
            options.timeout = Some(Duration::from_secs(20));
            let result = synthesize_isolated(&Synthesizer::with_options(options), &problem);
            let m = measurement_of_isolated(
                name,
                problem.examples().len(),
                &result,
                Duration::from_secs(20),
            );
            let (solved, time, generalizes) = match &result {
                Ok(s) => {
                    // Held-out check: the synthesized program must agree
                    // with the reference on fresh inputs.
                    let holdout = example_sweep(&bench, 12, SEED + 1)
                        .expect("example generator always yields a 12-example holdout set");
                    let gen = holdout.examples().iter().all(|ex| {
                        s.program.apply_with_fuel(&ex.inputs, DEFAULT_FUEL).ok()
                            == reference.apply_with_fuel(&ex.inputs, DEFAULT_FUEL).ok()
                    });
                    (true, s.elapsed, gen)
                }
                Err(_) => (false, Duration::from_secs(20), false),
            };
            records.push(record(
                &format!("{name}/k{k}"),
                &m,
                &[("k", k.into()), ("generalizes", generalizes.into())],
            ));
            eprintln!(
                "  {name} k={k}: {} ({:.1} ms){}",
                if solved { "ok" } else { "--" },
                time.as_secs_f64() * 1e3,
                if solved && !generalizes {
                    " [overfit]"
                } else {
                    ""
                }
            );
            rows.push(vec![
                (*name).to_owned(),
                k.to_string(),
                problem.examples().len().to_string(),
                if solved { "yes".into() } else { "no".into() },
                if solved { ms(time) } else { "timeout".into() },
                if !solved {
                    "-".into()
                } else if generalizes {
                    "yes".into()
                } else {
                    "no (overfit)".into()
                },
            ]);
        }
    }
    println!("F3: synthesis time and generalization vs number of examples\n");
    println!(
        "{}",
        render_table(
            &["benchmark", "k", "#ex", "solved", "time(ms)", "generalizes"],
            &rows,
        )
    );

    match write_bench_json("fig_examples", &[("seed", SEED.into())], records) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_fig_examples.json: {e}"),
    }
}
