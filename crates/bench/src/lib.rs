//! Shared experiment-harness code for the λ² reproduction.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures as
//! aligned text (see DESIGN.md §4 for the experiment index):
//!
//! * `table1` — the per-benchmark results table,
//! * `fig_cactus` — problems-solved-within-t curves for λ², the
//!   no-deduction ablation, and the pure-enumeration baseline,
//! * `fig_ablation` — per-benchmark deduction speedups,
//! * `fig_examples` — synthesis time vs number of examples.

use std::time::Duration;

use lambda2_bench_suite::Benchmark;
use lambda2_synth::baseline::{synthesize_baseline, BaselineOptions};
use lambda2_synth::{Measurement, SearchOptions, Stats, SynthError, Synthesizer};

/// Which engine to run a benchmark with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Full λ²: hypotheses + deduction + best-first enumeration.
    Lambda2,
    /// λ² with deduction disabled (the paper's ablation).
    NoDeduce,
    /// Pure cost-ordered enumeration (no hypotheses at all).
    Baseline,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Lambda2 => write!(f, "lambda2"),
            Engine::NoDeduce => write!(f, "no-deduce"),
            Engine::Baseline => write!(f, "baseline"),
        }
    }
}

/// Per-run timeout applied to ordinary benchmarks.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);
/// Per-run timeout applied to benchmarks marked `hard`.
pub const HARD_TIMEOUT: Duration = Duration::from_secs(180);

/// Search options for one benchmark: suite defaults, the benchmark's own
/// tuning, and the hard-problem timeout when applicable.
pub fn options_for(bench: &Benchmark, timeout: Option<Duration>) -> SearchOptions {
    let mut options = bench.tune(SearchOptions::default());
    options.timeout = Some(timeout.unwrap_or(if bench.hard {
        HARD_TIMEOUT
    } else {
        DEFAULT_TIMEOUT
    }));
    options
}

/// Runs one benchmark under one engine and records the outcome.
pub fn run_benchmark(
    bench: &Benchmark,
    engine: Engine,
    timeout: Option<Duration>,
) -> Measurement {
    let options = options_for(bench, timeout);
    let problem = &bench.problem;
    let result = match engine {
        Engine::Lambda2 => Synthesizer::with_options(options).synthesize(problem),
        Engine::NoDeduce => {
            Synthesizer::with_options(options).deduction(false).synthesize(problem)
        }
        Engine::Baseline => {
            let bopts = BaselineOptions {
                timeout: options.timeout,
                max_cost: options.max_cost,
                ..BaselineOptions::default()
            };
            synthesize_baseline(problem, &bopts)
        }
    };
    match result {
        Ok(s) => Measurement {
            name: problem.name().to_owned(),
            elapsed: s.elapsed,
            solved: true,
            cost: s.cost,
            size: s.program.body().size(),
            program: s.program.to_string(),
            examples: problem.examples().len(),
            stats: s.stats,
        },
        Err(e) => Measurement {
            name: problem.name().to_owned(),
            elapsed: timeout_elapsed(&e, bench, timeout),
            solved: false,
            cost: 0,
            size: 0,
            program: String::new(),
            examples: problem.examples().len(),
            stats: Stats::default(),
        },
    }
}

fn timeout_elapsed(
    err: &SynthError,
    bench: &Benchmark,
    timeout: Option<Duration>,
) -> Duration {
    match err {
        SynthError::Timeout => timeout.unwrap_or(if bench.hard {
            HARD_TIMEOUT
        } else {
            DEFAULT_TIMEOUT
        }),
        _ => Duration::ZERO,
    }
}

/// Renders rows as an aligned text table with a header.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_owned()
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a duration as milliseconds with one decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_bench_suite::by_name;

    #[test]
    fn run_benchmark_solves_a_trivial_problem() {
        let bench = by_name("ident").unwrap();
        let m = run_benchmark(&bench, Engine::Lambda2, Some(Duration::from_secs(10)));
        assert!(m.solved);
        assert_eq!(m.program, "(lambda (l) l)");
        assert_eq!(m.cost, 1);
    }

    #[test]
    fn engines_display_distinctly() {
        let names: Vec<String> = [Engine::Lambda2, Engine::NoDeduce, Engine::Baseline]
            .iter()
            .map(|e| e.to_string())
            .collect();
        assert_eq!(names.len(), 3);
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["name", "t"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn ms_formats_milliseconds() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.0");
        assert_eq!(ms(Duration::from_micros(2500)), "2.5");
    }
}
