//! Shared experiment-harness code for the λ² reproduction.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures as
//! aligned text (see DESIGN.md §4 for the experiment index):
//!
//! * `table1` — the per-benchmark results table,
//! * `fig_cactus` — problems-solved-within-t curves for λ², the
//!   no-deduction ablation, and the pure-enumeration baseline,
//! * `fig_ablation` — per-benchmark deduction speedups,
//! * `fig_examples` — synthesis time vs number of examples.
//!
//! Besides the text tables, every binary writes a machine-readable
//! `BENCH_<name>.json` report (see [`write_bench_json`]) into the repo's
//! `results/` directory (override with `LAMBDA2_RESULTS_DIR`), carrying
//! per-problem [`Measurement`]s with phase timings — deterministic paths
//! no matter which directory the binary is launched from.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Duration;

use lambda2_bench_suite::Benchmark;
use lambda2_synth::baseline::{synthesize_baseline, BaselineOptions};
use lambda2_synth::govern::panic_message;
use lambda2_synth::par::{synthesize_batch, ParEngine, ParTask};
use lambda2_synth::{Measurement, SearchOptions, Stats, SynthError, Synthesis, Synthesizer};

pub use lambda2_synth::obs::json::Json;

/// Which engine to run a benchmark with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Full λ²: hypotheses + deduction + best-first enumeration.
    Lambda2,
    /// λ² with deduction disabled (the paper's ablation).
    NoDeduce,
    /// Pure cost-ordered enumeration (no hypotheses at all).
    Baseline,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Lambda2 => write!(f, "lambda2"),
            Engine::NoDeduce => write!(f, "no-deduce"),
            Engine::Baseline => write!(f, "baseline"),
        }
    }
}

/// Per-run timeout applied to ordinary benchmarks.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);
/// Per-run timeout applied to benchmarks marked `hard`.
pub const HARD_TIMEOUT: Duration = Duration::from_secs(180);

/// Search options for one benchmark: suite defaults, the benchmark's own
/// tuning, and the hard-problem timeout when applicable.
pub fn options_for(bench: &Benchmark, timeout: Option<Duration>) -> SearchOptions {
    let mut options = bench.tune(SearchOptions::default());
    options.timeout = Some(timeout.unwrap_or(if bench.hard {
        HARD_TIMEOUT
    } else {
        DEFAULT_TIMEOUT
    }));
    options
}

/// Runs one benchmark under one engine and records the outcome.
///
/// The run is panic-isolated: a crash inside the engine becomes a
/// `solved: false` measurement carrying the panic message in `error`, so
/// a batch sweep records the failure and moves on instead of aborting.
pub fn run_benchmark(bench: &Benchmark, engine: Engine, timeout: Option<Duration>) -> Measurement {
    let options = options_for(bench, timeout);
    let problem = &bench.problem;
    let outcome = catch_unwind(AssertUnwindSafe(|| match engine {
        Engine::Lambda2 => Synthesizer::with_options(options.clone()).synthesize(problem),
        Engine::NoDeduce => Synthesizer::with_options(options.clone())
            .deduction(false)
            .synthesize(problem),
        Engine::Baseline => {
            let bopts = BaselineOptions {
                timeout: options.timeout,
                max_cost: options.max_cost,
                ..BaselineOptions::default()
            };
            synthesize_baseline(problem, &bopts)
        }
    }));
    let budget = timeout.unwrap_or(if bench.hard {
        HARD_TIMEOUT
    } else {
        DEFAULT_TIMEOUT
    });
    match outcome {
        Ok(result) => measurement_of(problem.name(), problem.examples().len(), &result, budget),
        Err(payload) => Measurement {
            name: problem.name().to_owned(),
            elapsed: Duration::ZERO,
            solved: false,
            cost: 0,
            size: 0,
            program: String::new(),
            examples: problem.examples().len(),
            stats: Stats::default(),
            error: Some(format!("panicked: {}", panic_message(&*payload))),
        },
    }
}

/// Runs a suite of benchmarks under one engine across `jobs` worker
/// threads (see [`lambda2_synth::par`]), returning measurements in suite
/// order. Per-problem results are identical to [`run_benchmark`] — each
/// worker runs the same engine under the same options and its own budget,
/// and panics are isolated per problem — only wall-clock time changes.
pub fn run_benchmarks_parallel(
    benches: &[Benchmark],
    engine: Engine,
    timeout: Option<Duration>,
    jobs: usize,
) -> Vec<Measurement> {
    let tasks: Vec<ParTask> = benches
        .iter()
        .map(|bench| {
            let mut options = options_for(bench, timeout);
            if engine == Engine::NoDeduce {
                options.deduction = false;
            }
            ParTask {
                spec: bench.problem.clone(),
                options,
                engine: match engine {
                    Engine::Baseline => ParEngine::Baseline,
                    Engine::Lambda2 | Engine::NoDeduce => ParEngine::Search,
                },
                portfolio: false,
                collect_trace: false,
            }
        })
        .collect();
    let budgets: Vec<Duration> = benches
        .iter()
        .map(|bench| {
            timeout.unwrap_or(if bench.hard {
                HARD_TIMEOUT
            } else {
                DEFAULT_TIMEOUT
            })
        })
        .collect();
    synthesize_batch(tasks, jobs)
        .into_iter()
        .zip(budgets)
        .map(|(outcome, budget)| match outcome.result {
            Ok(report) => report.to_measurement_budgeted(&outcome.name, outcome.examples, budget),
            Err(msg) => Measurement {
                name: outcome.name,
                elapsed: Duration::ZERO,
                solved: false,
                cost: 0,
                size: 0,
                program: String::new(),
                examples: outcome.examples,
                stats: Stats::default(),
                error: Some(format!("panicked: {msg}")),
            },
        })
        .collect()
}

/// Parses a `--jobs <n>` argument pair out of `args` (any position),
/// returning the requested worker count (`0` = one per CPU) or `None`
/// when absent. Exits with a diagnostic on a malformed count, like the
/// quick-flag conventions of the bench binaries.
pub fn jobs_arg(args: &mut Vec<String>) -> Option<usize> {
    let at = args.iter().position(|a| a == "--jobs")?;
    args.remove(at);
    if at >= args.len() {
        eprintln!("error: --jobs requires a worker count");
        std::process::exit(2);
    }
    let raw = args.remove(at);
    match raw.parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("error: --jobs: `{raw}` is not a whole number of workers");
            std::process::exit(2);
        }
    }
}

/// A per-run failure seen by the harness: the engine's own terminal
/// error, or a panic caught at the isolation boundary.
#[derive(Clone, Debug)]
pub enum RunError {
    /// The engine returned a structured error.
    Synth(SynthError),
    /// The engine panicked; the rendered payload message.
    Panic(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Synth(e) => write!(f, "{e}"),
            RunError::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// Runs `synthesizer` on `problem` under panic isolation: a crash inside
/// the engine becomes [`RunError::Panic`] instead of aborting the sweep.
pub fn synthesize_isolated(
    synthesizer: &Synthesizer,
    problem: &lambda2_synth::Problem,
) -> Result<Synthesis, RunError> {
    match catch_unwind(AssertUnwindSafe(|| synthesizer.synthesize(problem))) {
        Ok(Ok(s)) => Ok(s),
        Ok(Err(e)) => Err(RunError::Synth(e)),
        Err(payload) => Err(RunError::Panic(panic_message(&*payload))),
    }
}

/// [`measurement_of`] over a panic-isolated outcome.
pub fn measurement_of_isolated(
    name: &str,
    examples: usize,
    result: &Result<Synthesis, RunError>,
    budget: Duration,
) -> Measurement {
    match result {
        Ok(s) => measurement_of(name, examples, &Ok(s.clone()), budget),
        Err(RunError::Synth(e)) => measurement_of(name, examples, &Err(e.clone()), budget),
        Err(e @ RunError::Panic(_)) => Measurement {
            name: name.to_owned(),
            elapsed: Duration::ZERO,
            solved: false,
            cost: 0,
            size: 0,
            program: String::new(),
            examples,
            stats: Stats::default(),
            error: Some(e.to_string()),
        },
    }
}

/// Converts a synthesis outcome into a [`Measurement`]. Timeouts are
/// charged the full `budget`; other failures (exhausted space,
/// inconsistent examples) report zero elapsed.
pub fn measurement_of(
    name: &str,
    examples: usize,
    result: &Result<Synthesis, SynthError>,
    budget: Duration,
) -> Measurement {
    match result {
        Ok(s) => Measurement {
            name: name.to_owned(),
            elapsed: s.elapsed,
            solved: true,
            cost: s.cost,
            size: s.program.body().size(),
            program: s.program.to_string(),
            examples,
            stats: s.stats.clone(),
            error: None,
        },
        Err(e) => Measurement {
            name: name.to_owned(),
            elapsed: if matches!(e, SynthError::Timeout) {
                budget
            } else {
                Duration::ZERO
            },
            solved: false,
            cost: 0,
            size: 0,
            program: String::new(),
            examples,
            stats: Stats::default(),
            error: Some(e.to_string()),
        },
    }
}

/// One record of a `BENCH_*.json` report: a labeled [`Measurement`] plus
/// experiment-specific extra fields (engine, config, sweep parameter, …).
pub fn record(label: &str, m: &Measurement, extra: &[(&'static str, Json)]) -> Json {
    let mut pairs = vec![("label".to_owned(), Json::str(label))];
    if let Json::Obj(mpairs) = m.to_json() {
        pairs.extend(mpairs);
    }
    for (k, v) in extra {
        pairs.push(((*k).to_owned(), v.clone()));
    }
    Json::Obj(pairs)
}

/// The directory `BENCH_*.json` reports are written into: the
/// `LAMBDA2_RESULTS_DIR` environment variable when set, otherwise the
/// repo's `results/` directory (resolved from this crate's manifest, so
/// the path does not depend on the launch directory).
pub fn results_dir() -> PathBuf {
    match std::env::var_os("LAMBDA2_RESULTS_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crate lives two levels below the repo root")
            .join("results"),
    }
}

/// Writes `BENCH_<name>.json` into [`results_dir`] (creating it if
/// needed): a single JSON object with the experiment name, top-level
/// `meta` fields, and a `results` array of [`record`]s. Returns the path
/// written.
///
/// When the `LAMBDA2_CORPUS_DIR` environment variable is set, the same
/// document is also folded into the run corpus there (see
/// [`lambda2_synth::ingest_bench`]), so every bench harness feeds the
/// cross-run regression watchdog without per-binary plumbing.
///
/// # Errors
///
/// Propagates the underlying filesystem write failure; corpus failures
/// are reported the same way (the bench file itself is already on disk).
pub fn write_bench_json(
    name: &str,
    meta: &[(&'static str, Json)],
    records: Vec<Json>,
) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut pairs = vec![
        ("v".to_owned(), lambda2_synth::SCHEMA_VERSION.into()),
        ("bench".to_owned(), Json::str(name)),
    ];
    for (k, v) in meta {
        pairs.push(((*k).to_owned(), v.clone()));
    }
    pairs.push(("results".to_owned(), Json::Arr(records)));
    let doc = Json::Obj(pairs);
    std::fs::write(&path, format!("{doc}\n"))?;
    if let Some(corpus_dir) = std::env::var_os("LAMBDA2_CORPUS_DIR") {
        let fold = || -> Result<usize, String> {
            let corpus =
                lambda2_synth::Corpus::open(Path::new(&corpus_dir)).map_err(|e| e.to_string())?;
            let records = lambda2_synth::ingest_bench(&doc)?;
            corpus.append(&records).map_err(|e| e.to_string())?;
            Ok(records.len())
        };
        match fold() {
            Ok(n) => eprintln!(
                "corpus: {n} record(s) -> {}",
                Path::new(&corpus_dir).display()
            ),
            Err(e) => return Err(std::io::Error::other(format!("LAMBDA2_CORPUS_DIR: {e}"))),
        }
    }
    Ok(path)
}

/// Renders rows as an aligned text table with a header.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_owned()
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a duration as milliseconds with one decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_bench_suite::by_name;

    #[test]
    fn run_benchmark_solves_a_trivial_problem() {
        let bench = by_name("ident").unwrap();
        let m = run_benchmark(&bench, Engine::Lambda2, Some(Duration::from_secs(10)));
        assert!(m.solved);
        assert_eq!(m.program, "(lambda (l) l)");
        assert_eq!(m.cost, 1);
    }

    #[test]
    fn measurement_of_records_the_terminal_error() {
        let ok: Result<Synthesis, SynthError> = Err(SynthError::Timeout);
        let m = measurement_of("p", 2, &ok, Duration::from_secs(3));
        assert!(!m.solved);
        assert_eq!(m.elapsed, Duration::from_secs(3));
        assert_eq!(m.error.as_deref(), Some("synthesis timed out"));

        let exhausted: Result<Synthesis, SynthError> = Err(SynthError::Exhausted);
        let m = measurement_of("p", 2, &exhausted, Duration::from_secs(3));
        assert_eq!(m.elapsed, Duration::ZERO);
        assert!(m.error.is_some());
    }

    #[test]
    fn engines_display_distinctly() {
        let names: Vec<String> = [Engine::Lambda2, Engine::NoDeduce, Engine::Baseline]
            .iter()
            .map(|e| e.to_string())
            .collect();
        assert_eq!(names.len(), 3);
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["name", "t"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn ms_formats_milliseconds() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.0");
        assert_eq!(ms(Duration::from_micros(2500)), "2.5");
    }

    #[test]
    fn records_carry_label_measurement_and_extras() {
        let bench = by_name("ident").unwrap();
        let m = run_benchmark(&bench, Engine::Lambda2, Some(Duration::from_secs(10)));
        let r = record("lambda2/ident", &m, &[("engine", "lambda2".into())]);
        assert_eq!(r.get("label").unwrap().as_str(), Some("lambda2/ident"));
        assert_eq!(r.get("engine").unwrap().as_str(), Some("lambda2"));
        assert_eq!(r.get("solved"), Some(&Json::Bool(true)));
        assert!(r.get("stats").unwrap().get("phases").is_some());
    }

    #[test]
    fn write_bench_json_emits_a_parseable_report_under_the_results_dir() {
        // The env override redirects the report; without it the path
        // resolves from the crate manifest, independent of the CWD.
        let dir = std::env::temp_dir().join("bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("LAMBDA2_RESULTS_DIR", &dir);
        let bench = by_name("ident").unwrap();
        let m = run_benchmark(&bench, Engine::Lambda2, Some(Duration::from_secs(10)));
        let path = write_bench_json(
            "selftest",
            &[("quick", true.into())],
            vec![record("ident", &m, &[])],
        )
        .unwrap();
        std::env::remove_var("LAMBDA2_RESULTS_DIR");
        assert_eq!(path.parent(), Some(dir.as_path()));
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = lambda2_synth::obs::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("v").and_then(Json::as_i64),
            Some(lambda2_synth::SCHEMA_VERSION as i64)
        );
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("selftest"));
        assert_eq!(doc.get("quick"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("results").unwrap().as_arr().unwrap().len(), 1);

        // Without the override, the path resolves to the repo's results/
        // directory (two levels up from crates/bench), CWD-independent.
        let default_dir = results_dir();
        assert!(
            default_dir.ends_with("results"),
            "{}",
            default_dir.display()
        );
        assert!(default_dir.parent().unwrap().join("Cargo.toml").exists());
    }

    #[test]
    fn parallel_suite_matches_sequential_measurements() {
        let names = ["ident", "head", "tail"];
        let benches: Vec<Benchmark> = names
            .iter()
            .map(|n| by_name(n).expect("suite problem"))
            .collect();
        let timeout = Some(Duration::from_secs(10));
        let parallel = run_benchmarks_parallel(&benches, Engine::Lambda2, timeout, 3);
        for (bench, m) in benches.iter().zip(&parallel) {
            let seq = run_benchmark(bench, Engine::Lambda2, timeout);
            assert_eq!(m.name, seq.name);
            assert_eq!(m.solved, seq.solved);
            assert_eq!(m.program, seq.program, "{}", m.name);
            assert_eq!(m.cost, seq.cost);
            assert_eq!(m.stats.popped, seq.stats.popped);
        }
    }

    #[test]
    fn jobs_arg_extracts_the_flag_pair() {
        let mut args: Vec<String> = vec!["--quick".into(), "--jobs".into(), "4".into()];
        assert_eq!(jobs_arg(&mut args), Some(4));
        assert_eq!(args, vec!["--quick".to_owned()]);
        assert_eq!(jobs_arg(&mut args), None);
    }
}
