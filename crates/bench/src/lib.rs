//! Shared experiment-harness code for the λ² reproduction.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures as
//! aligned text (see DESIGN.md §4 for the experiment index):
//!
//! * `table1` — the per-benchmark results table,
//! * `fig_cactus` — problems-solved-within-t curves for λ², the
//!   no-deduction ablation, and the pure-enumeration baseline,
//! * `fig_ablation` — per-benchmark deduction speedups,
//! * `fig_examples` — synthesis time vs number of examples.
//!
//! Besides the text tables, every binary writes a machine-readable
//! `BENCH_<name>.json` report (see [`write_bench_json`]) into the current
//! directory, carrying per-problem [`Measurement`]s with phase timings.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Duration;

use lambda2_bench_suite::Benchmark;
use lambda2_synth::baseline::{synthesize_baseline, BaselineOptions};
use lambda2_synth::govern::panic_message;
use lambda2_synth::{Measurement, SearchOptions, Stats, SynthError, Synthesis, Synthesizer};

pub use lambda2_synth::obs::json::Json;

/// Which engine to run a benchmark with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Full λ²: hypotheses + deduction + best-first enumeration.
    Lambda2,
    /// λ² with deduction disabled (the paper's ablation).
    NoDeduce,
    /// Pure cost-ordered enumeration (no hypotheses at all).
    Baseline,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Lambda2 => write!(f, "lambda2"),
            Engine::NoDeduce => write!(f, "no-deduce"),
            Engine::Baseline => write!(f, "baseline"),
        }
    }
}

/// Per-run timeout applied to ordinary benchmarks.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);
/// Per-run timeout applied to benchmarks marked `hard`.
pub const HARD_TIMEOUT: Duration = Duration::from_secs(180);

/// Search options for one benchmark: suite defaults, the benchmark's own
/// tuning, and the hard-problem timeout when applicable.
pub fn options_for(bench: &Benchmark, timeout: Option<Duration>) -> SearchOptions {
    let mut options = bench.tune(SearchOptions::default());
    options.timeout = Some(timeout.unwrap_or(if bench.hard {
        HARD_TIMEOUT
    } else {
        DEFAULT_TIMEOUT
    }));
    options
}

/// Runs one benchmark under one engine and records the outcome.
///
/// The run is panic-isolated: a crash inside the engine becomes a
/// `solved: false` measurement carrying the panic message in `error`, so
/// a batch sweep records the failure and moves on instead of aborting.
pub fn run_benchmark(bench: &Benchmark, engine: Engine, timeout: Option<Duration>) -> Measurement {
    let options = options_for(bench, timeout);
    let problem = &bench.problem;
    let outcome = catch_unwind(AssertUnwindSafe(|| match engine {
        Engine::Lambda2 => Synthesizer::with_options(options.clone()).synthesize(problem),
        Engine::NoDeduce => Synthesizer::with_options(options.clone())
            .deduction(false)
            .synthesize(problem),
        Engine::Baseline => {
            let bopts = BaselineOptions {
                timeout: options.timeout,
                max_cost: options.max_cost,
                ..BaselineOptions::default()
            };
            synthesize_baseline(problem, &bopts)
        }
    }));
    let budget = timeout.unwrap_or(if bench.hard {
        HARD_TIMEOUT
    } else {
        DEFAULT_TIMEOUT
    });
    match outcome {
        Ok(result) => measurement_of(problem.name(), problem.examples().len(), &result, budget),
        Err(payload) => Measurement {
            name: problem.name().to_owned(),
            elapsed: Duration::ZERO,
            solved: false,
            cost: 0,
            size: 0,
            program: String::new(),
            examples: problem.examples().len(),
            stats: Stats::default(),
            error: Some(format!("panicked: {}", panic_message(&*payload))),
        },
    }
}

/// A per-run failure seen by the harness: the engine's own terminal
/// error, or a panic caught at the isolation boundary.
#[derive(Clone, Debug)]
pub enum RunError {
    /// The engine returned a structured error.
    Synth(SynthError),
    /// The engine panicked; the rendered payload message.
    Panic(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Synth(e) => write!(f, "{e}"),
            RunError::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// Runs `synthesizer` on `problem` under panic isolation: a crash inside
/// the engine becomes [`RunError::Panic`] instead of aborting the sweep.
pub fn synthesize_isolated(
    synthesizer: &Synthesizer,
    problem: &lambda2_synth::Problem,
) -> Result<Synthesis, RunError> {
    match catch_unwind(AssertUnwindSafe(|| synthesizer.synthesize(problem))) {
        Ok(Ok(s)) => Ok(s),
        Ok(Err(e)) => Err(RunError::Synth(e)),
        Err(payload) => Err(RunError::Panic(panic_message(&*payload))),
    }
}

/// [`measurement_of`] over a panic-isolated outcome.
pub fn measurement_of_isolated(
    name: &str,
    examples: usize,
    result: &Result<Synthesis, RunError>,
    budget: Duration,
) -> Measurement {
    match result {
        Ok(s) => measurement_of(name, examples, &Ok(s.clone()), budget),
        Err(RunError::Synth(e)) => measurement_of(name, examples, &Err(e.clone()), budget),
        Err(e @ RunError::Panic(_)) => Measurement {
            name: name.to_owned(),
            elapsed: Duration::ZERO,
            solved: false,
            cost: 0,
            size: 0,
            program: String::new(),
            examples,
            stats: Stats::default(),
            error: Some(e.to_string()),
        },
    }
}

/// Converts a synthesis outcome into a [`Measurement`]. Timeouts are
/// charged the full `budget`; other failures (exhausted space,
/// inconsistent examples) report zero elapsed.
pub fn measurement_of(
    name: &str,
    examples: usize,
    result: &Result<Synthesis, SynthError>,
    budget: Duration,
) -> Measurement {
    match result {
        Ok(s) => Measurement {
            name: name.to_owned(),
            elapsed: s.elapsed,
            solved: true,
            cost: s.cost,
            size: s.program.body().size(),
            program: s.program.to_string(),
            examples,
            stats: s.stats.clone(),
            error: None,
        },
        Err(e) => Measurement {
            name: name.to_owned(),
            elapsed: if matches!(e, SynthError::Timeout) {
                budget
            } else {
                Duration::ZERO
            },
            solved: false,
            cost: 0,
            size: 0,
            program: String::new(),
            examples,
            stats: Stats::default(),
            error: Some(e.to_string()),
        },
    }
}

/// One record of a `BENCH_*.json` report: a labeled [`Measurement`] plus
/// experiment-specific extra fields (engine, config, sweep parameter, …).
pub fn record(label: &str, m: &Measurement, extra: &[(&'static str, Json)]) -> Json {
    let mut pairs = vec![("label".to_owned(), Json::str(label))];
    if let Json::Obj(mpairs) = m.to_json() {
        pairs.extend(mpairs);
    }
    for (k, v) in extra {
        pairs.push(((*k).to_owned(), v.clone()));
    }
    Json::Obj(pairs)
}

/// Writes `BENCH_<name>.json` in the current directory: a single JSON
/// object with the experiment name, top-level `meta` fields, and a
/// `results` array of [`record`]s. Returns the path written.
///
/// # Errors
///
/// Propagates the underlying filesystem write failure.
pub fn write_bench_json(
    name: &str,
    meta: &[(&'static str, Json)],
    records: Vec<Json>,
) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let mut pairs = vec![("bench".to_owned(), Json::str(name))];
    for (k, v) in meta {
        pairs.push(((*k).to_owned(), v.clone()));
    }
    pairs.push(("results".to_owned(), Json::Arr(records)));
    std::fs::write(&path, format!("{}\n", Json::Obj(pairs)))?;
    Ok(path)
}

/// Renders rows as an aligned text table with a header.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_owned()
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a duration as milliseconds with one decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda2_bench_suite::by_name;

    #[test]
    fn run_benchmark_solves_a_trivial_problem() {
        let bench = by_name("ident").unwrap();
        let m = run_benchmark(&bench, Engine::Lambda2, Some(Duration::from_secs(10)));
        assert!(m.solved);
        assert_eq!(m.program, "(lambda (l) l)");
        assert_eq!(m.cost, 1);
    }

    #[test]
    fn measurement_of_records_the_terminal_error() {
        let ok: Result<Synthesis, SynthError> = Err(SynthError::Timeout);
        let m = measurement_of("p", 2, &ok, Duration::from_secs(3));
        assert!(!m.solved);
        assert_eq!(m.elapsed, Duration::from_secs(3));
        assert_eq!(m.error.as_deref(), Some("synthesis timed out"));

        let exhausted: Result<Synthesis, SynthError> = Err(SynthError::Exhausted);
        let m = measurement_of("p", 2, &exhausted, Duration::from_secs(3));
        assert_eq!(m.elapsed, Duration::ZERO);
        assert!(m.error.is_some());
    }

    #[test]
    fn engines_display_distinctly() {
        let names: Vec<String> = [Engine::Lambda2, Engine::NoDeduce, Engine::Baseline]
            .iter()
            .map(|e| e.to_string())
            .collect();
        assert_eq!(names.len(), 3);
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["name", "t"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn ms_formats_milliseconds() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.0");
        assert_eq!(ms(Duration::from_micros(2500)), "2.5");
    }

    #[test]
    fn records_carry_label_measurement_and_extras() {
        let bench = by_name("ident").unwrap();
        let m = run_benchmark(&bench, Engine::Lambda2, Some(Duration::from_secs(10)));
        let r = record("lambda2/ident", &m, &[("engine", "lambda2".into())]);
        assert_eq!(r.get("label").unwrap().as_str(), Some("lambda2/ident"));
        assert_eq!(r.get("engine").unwrap().as_str(), Some("lambda2"));
        assert_eq!(r.get("solved"), Some(&Json::Bool(true)));
        assert!(r.get("stats").unwrap().get("phases").is_some());
    }

    #[test]
    fn write_bench_json_emits_a_parseable_report() {
        let dir = std::env::temp_dir().join("bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let bench = by_name("ident").unwrap();
        let m = run_benchmark(&bench, Engine::Lambda2, Some(Duration::from_secs(10)));
        let path = write_bench_json(
            "selftest",
            &[("quick", true.into())],
            vec![record("ident", &m, &[])],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(old).unwrap();
        let doc = lambda2_synth::obs::json::parse(&text).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("selftest"));
        assert_eq!(doc.get("quick"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("results").unwrap().as_arr().unwrap().len(), 1);
    }
}
