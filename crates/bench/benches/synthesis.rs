//! End-to-end synthesis benchmarks on representative suite problems, one
//! per combinator family. These are the numbers to watch when changing
//! the search, the cost model, or the enumerator.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use lambda2_bench_suite::by_name;
use lambda2_synth::{SearchOptions, Synthesizer};

fn synthesize(name: &str) {
    let bench = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut options = bench.tune(SearchOptions::default());
    options.timeout = Some(Duration::from_secs(120));
    let result = Synthesizer::with_options(options)
        .synthesize(&bench.problem)
        .unwrap_or_else(|e| panic!("{name} failed: {e}"));
    assert!(result.program.satisfies_problem(&bench.problem, 100_000));
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);

    // First-order closing only.
    group.bench_function("shiftl(first-order)", |b| b.iter(|| synthesize("shiftl")));
    // One map.
    group.bench_function("incr(map)", |b| b.iter(|| synthesize("incr")));
    // One filter.
    group.bench_function("positives(filter)", |b| b.iter(|| synthesize("positives")));
    // One fold with chains.
    group.bench_function("sum(foldl)", |b| b.iter(|| synthesize("sum")));
    // A recl with deduced rows.
    group.bench_function("droplast(recl)", |b| b.iter(|| synthesize("droplast")));
    group.finish();

    let mut group = c.benchmark_group("synthesis-nested");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(60));
    // Nested combinators (map + fold) — the paper's flagship territory.
    group.bench_function("sums(map+foldl)", |b| b.iter(|| synthesize("sums")));
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
