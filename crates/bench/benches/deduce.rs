//! Deduction-rule micro-benchmarks: rules run once per
//! (hole context × combinator × collection × init) during planning, so
//! their throughput bounds hypothesis generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda2_bench_suite::generators::random_list;
use lambda2_lang::ast::Comb;
use lambda2_lang::env::Env;
use lambda2_lang::eval::eval_default;
use lambda2_lang::parser::parse_expr;
use lambda2_lang::symbol::Symbol;
use lambda2_lang::value::Value;
use lambda2_synth::deduce::{deduce, CollectionArg};
use lambda2_synth::ExampleRow;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rows for `map (λx. x+1)` over `n_rows` random lists.
fn map_rows(n_rows: usize) -> (Vec<ExampleRow>, CollectionArg) {
    let mut rng = StdRng::seed_from_u64(11);
    let l = Symbol::intern("l");
    let prog = parse_expr("(map (lambda (x) (+ x 1)) l)").unwrap();
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for i in 0..n_rows {
        let input = random_list(i % 7 + 1, 50, &mut rng);
        let env = Env::empty().bind(l, input.clone());
        let out = eval_default(&prog, &env).unwrap();
        rows.push(ExampleRow::new(env, out));
        values.push(input);
    }
    (
        rows,
        CollectionArg {
            values,
            var: Some(l),
        },
    )
}

/// Prefix-chain rows for `foldl (+) 0` (every chain link deduces).
fn fold_rows(n_rows: usize) -> (Vec<ExampleRow>, CollectionArg, Vec<Value>) {
    let mut rng = StdRng::seed_from_u64(13);
    let l = Symbol::intern("l");
    let base = random_list(n_rows, 50, &mut rng);
    let base = base.as_list().unwrap().to_vec();
    let prog = parse_expr("(foldl (lambda (a x) (+ a x)) 0 l)").unwrap();
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for n in 0..=n_rows {
        let input = Value::list(base[..n].to_vec());
        let env = Env::empty().bind(l, input.clone());
        let out = eval_default(&prog, &env).unwrap();
        rows.push(ExampleRow::new(env, out));
        values.push(input);
    }
    let inits = vec![Value::Int(0); rows.len()];
    (
        rows,
        CollectionArg {
            values,
            var: Some(l),
        },
        inits,
    )
}

fn bench_deduce(c: &mut Criterion) {
    let x = Symbol::intern("x");
    let a = Symbol::intern("a");

    let mut group = c.benchmark_group("deduce/map");
    for &n in &[2usize, 8, 32] {
        let (rows, coll) = map_rows(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| deduce(Comb::Map, &rows, &coll, None, &[x], true))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("deduce/foldl-chain");
    for &n in &[2usize, 8, 32] {
        let (rows, coll, inits) = fold_rows(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| deduce(Comb::Foldl, &rows, &coll, Some(&inits), &[a, x], true))
        });
    }
    group.finish();

    // Refutation path (length mismatch) — must be cheap, it runs often.
    let mut group = c.benchmark_group("deduce/map-refute");
    let l = Symbol::intern("l");
    let iv = Value::list(vec![Value::Int(1), Value::Int(2)]);
    let rows = vec![ExampleRow::new(
        Env::empty().bind(l, iv.clone()),
        Value::list(vec![Value::Int(1)]),
    )];
    let coll = CollectionArg {
        values: vec![iv],
        var: Some(l),
    };
    group.bench_function("length-mismatch", |b| {
        b.iter(|| deduce(Comb::Map, &rows, &coll, None, &[x], true))
    });
    group.finish();
}

criterion_group!(benches, bench_deduce);
criterion_main!(benches);
