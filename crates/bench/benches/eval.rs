//! Evaluator micro-benchmarks: the substrate every synthesis run leans on
//! (deduction, enumeration and verification all evaluate terms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda2_bench_suite::generators::{random_list, random_tree};
use lambda2_lang::env::Env;
use lambda2_lang::eval::eval;
use lambda2_lang::parser::parse_expr;
use lambda2_lang::symbol::Symbol;
use lambda2_lang::value::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_eval(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let l = Symbol::intern("l");
    let t = Symbol::intern("t");

    let mut group = c.benchmark_group("eval/reverse-fold");
    for &n in &[10usize, 100, 1000] {
        let input = random_list(n, 100, &mut rng);
        let env = Env::empty().bind(l, input);
        let expr = parse_expr("(foldl (lambda (a x) (cons x a)) [] l)").unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &env, |b, env| {
            b.iter(|| {
                let mut fuel = u64::MAX;
                eval(&expr, env, &mut fuel).unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("eval/sumt-foldt");
    for &n in &[10usize, 100, 1000] {
        let input = Value::Tree(random_tree(n, 100, &mut rng));
        let env = Env::empty().bind(t, input);
        let expr =
            parse_expr("(foldt (lambda (v rs) (foldl (lambda (a r) (+ a r)) v rs)) 0 t)").unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &env, |b, env| {
            b.iter(|| {
                let mut fuel = u64::MAX;
                eval(&expr, env, &mut fuel).unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("eval/filter-map-pipeline");
    for &n in &[10usize, 100, 1000] {
        let input = random_list(n, 100, &mut rng);
        let env = Env::empty().bind(l, input);
        let expr =
            parse_expr("(map (lambda (x) (* x x)) (filter (lambda (x) (< 10 x)) l))").unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &env, |b, env| {
            b.iter(|| {
                let mut fuel = u64::MAX;
                eval(&expr, env, &mut fuel).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
