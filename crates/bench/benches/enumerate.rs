//! Enumerator micro-benchmarks: cost of building term-store levels, the
//! dominant cost inside hard synthesis runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda2_lang::env::Env;
use lambda2_lang::parser::parse_value;
use lambda2_lang::symbol::Symbol;
use lambda2_lang::ty::Type;
use lambda2_synth::enumerate::{EnumLimits, TermStore};
use lambda2_synth::{ExampleRow, Library, Spec};

/// A typical deduced-hole context: list + two scalars in scope, 3 rows.
fn context() -> (Vec<(Symbol, Type)>, Spec) {
    let l = Symbol::intern("l");
    let a = Symbol::intern("a");
    let x = Symbol::intern("x");
    let scope = vec![(l, Type::list(Type::Int)), (a, Type::Int), (x, Type::Int)];
    let rows = [("[3 1]", 4, 3, 7), ("[5]", 0, 5, 5), ("[2 9 4]", 15, 2, 17)]
        .iter()
        .map(|(lv, av, xv, out)| {
            ExampleRow::new(
                Env::empty()
                    .bind(l, parse_value(lv).unwrap())
                    .bind(a, lambda2_lang::value::Value::Int(*av))
                    .bind(x, lambda2_lang::value::Value::Int(*xv)),
                lambda2_lang::value::Value::Int(*out),
            )
        })
        .collect::<Vec<_>>();
    (scope, Spec::new(rows).unwrap())
}

fn bench_enumerate(c: &mut Criterion) {
    let lib = Library::default();

    let mut group = c.benchmark_group("enumerate/build-to-cost");
    group.sample_size(20);
    for &cost in &[3u32, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(cost), &cost, |b, &cost| {
            b.iter(|| {
                let (scope, spec) = context();
                let mut store = TermStore::new(scope, &spec, EnumLimits::default());
                store.ensure(cost, &lib);
                store.len()
            })
        });
    }
    group.finish();

    // Observational equivalence is the enumerator's pruning lever: compare
    // level sizes with rows (dedup active) vs a blind store (no rows).
    let mut group = c.benchmark_group("enumerate/blind-vs-observed");
    group.sample_size(20);
    group.bench_function("observed-cost5", |b| {
        b.iter(|| {
            let (scope, spec) = context();
            let mut store = TermStore::new(scope, &spec, EnumLimits::default());
            store.ensure(5, &lib);
            store.len()
        })
    });
    group.bench_function("blind-cost5", |b| {
        b.iter(|| {
            let (scope, _) = context();
            let mut store = TermStore::new(
                scope,
                &Spec::empty(),
                EnumLimits {
                    max_level_terms: 20_000,
                    max_terms: 200_000,
                    ..EnumLimits::default()
                },
            );
            store.ensure(5, &lib);
            store.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumerate);
criterion_main!(benches);
