//! Resource-governance integration tests (DESIGN.md §11).
//!
//! The contract under test: a governed search *always* comes back — within
//! a bounded overshoot of its deadline, with a structured report on every
//! path — and resource verdicts are distinguishable (a timeout is never
//! misreported as an exhausted space, a cancellation never wedges).

use std::time::{Duration, Instant};

use lambda2::suite::{by_name, catalog};
use lambda2::synth::obs::NoopTracer;
use lambda2::synth::{
    search_governed, Budget, BudgetExceeded, Rung, SearchOptions, SynthError, Synthesizer,
};

/// Scheduling slack on top of the documented `timeout + max_overshoot`
/// bound. Debug builds run the engine's slow paths ~10x slower, so the
/// slack is generous there; the release-only test below uses the tight
/// acceptance bound.
const DEBUG_SLACK: Duration = Duration::from_millis(300);

fn governed_elapsed(options: &SearchOptions, name: &str) -> Duration {
    let bench = by_name(name).expect("benchmark exists");
    let options = bench.tune(options.clone());
    let start = Instant::now();
    let report = Synthesizer::with_options(options).synthesize_report(&bench.problem);
    let wall = start.elapsed();
    // Whatever happened, it must be reported, not thrown away.
    assert!(
        report.is_success() || report.outcome.is_err(),
        "reports are total"
    );
    wall
}

#[test]
fn hard_problems_return_within_the_overshoot_bound() {
    let timeout = Duration::from_millis(200);
    let overshoot = Duration::from_millis(100);
    let options = SearchOptions {
        timeout: Some(timeout),
        max_overshoot: overshoot,
        ..SearchOptions::default()
    };
    for bench in catalog().into_iter().filter(|b| b.hard) {
        let wall = governed_elapsed(&options, bench.problem.name());
        assert!(
            wall <= timeout + overshoot + DEBUG_SLACK,
            "{}: returned after {wall:?} (bound {:?})",
            bench.problem.name(),
            timeout + overshoot + DEBUG_SLACK,
        );
    }
}

/// The acceptance bound from the issue: a 200ms budget returns within
/// 300ms on the hardest suite problems. Only meaningful at release
/// optimization levels, so it is ignored in debug builds (CI runs it via
/// `cargo test --release`).
#[test]
#[cfg_attr(debug_assertions, ignore = "tight bound holds in release builds only")]
fn release_overshoot_bound_is_tight() {
    let timeout = Duration::from_millis(200);
    let options = SearchOptions {
        timeout: Some(timeout),
        max_overshoot: Duration::from_millis(100),
        ..SearchOptions::default()
    };
    for bench in catalog().into_iter().filter(|b| b.hard) {
        let wall = governed_elapsed(&options, bench.problem.name());
        assert!(
            wall <= Duration::from_millis(300),
            "{}: returned after {wall:?} (bound 300ms)",
            bench.problem.name(),
        );
    }
}

#[test]
fn timeout_and_exhaustion_stay_distinguishable_near_the_boundary() {
    let bench = by_name("evens").expect("benchmark exists");
    // `evens` needs a cost-13 program; capping the space at cost 4
    // exhausts it quickly. With a generous deadline that must surface as
    // Exhausted...
    let tiny_space = SearchOptions {
        max_cost: 4,
        timeout: Some(Duration::from_secs(30)),
        ..SearchOptions::default()
    };
    let report = Synthesizer::with_options(tiny_space.clone()).synthesize_report(&bench.problem);
    assert_eq!(report.outcome.unwrap_err(), SynthError::Exhausted);
    assert!(report.budget.exceeded.is_none());

    // ...while a zero deadline over the very same space must surface as
    // Timeout — the deadline verdict wins before the space can drain.
    let expired = SearchOptions {
        timeout: Some(Duration::ZERO),
        ..tiny_space
    };
    let report = Synthesizer::with_options(expired).synthesize_report(&bench.problem);
    assert_eq!(report.outcome.unwrap_err(), SynthError::Timeout);
    assert_eq!(report.budget.exceeded, Some(BudgetExceeded::Deadline));
}

#[test]
fn exhausted_budgets_report_an_anytime_frontier() {
    let bench = by_name("evens").expect("benchmark exists");
    let options = SearchOptions {
        max_popped: 20,
        ..SearchOptions::default()
    };
    let report = Synthesizer::with_options(options).synthesize_report(&bench.problem);
    assert_eq!(report.outcome.unwrap_err(), SynthError::LimitReached);
    assert_eq!(report.budget.exceeded, Some(BudgetExceeded::PopLimit));
    assert_eq!(report.stats.popped, 20);
    assert!(
        !report.frontier.is_empty(),
        "an interrupted search surfaces its best open hypotheses"
    );
    let costs: Vec<u32> = report.frontier.iter().map(|f| f.cost).collect();
    let mut sorted = costs.clone();
    sorted.sort_unstable();
    assert_eq!(costs, sorted, "frontier is best-cost-first");
}

#[test]
fn cancellation_interrupts_a_running_search() {
    let bench = by_name("evens").expect("benchmark exists");
    let options = SearchOptions {
        timeout: None,
        ..SearchOptions::default()
    };
    let budget = Budget::for_search(&options);
    let token = budget.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
    });
    let start = Instant::now();
    let report = search_governed(&bench.problem, &options, &budget, &mut NoopTracer);
    let wall = start.elapsed();
    canceller.join().expect("canceller thread");
    // Either the search finished first (evens is solvable) or the cancel
    // landed; if it landed, the verdict must be Cancelled and prompt.
    match report.outcome {
        Ok(_) => {}
        Err(e) => {
            assert_eq!(e, SynthError::Cancelled);
            assert_eq!(report.budget.exceeded, Some(BudgetExceeded::Cancelled));
            assert!(wall < Duration::from_secs(5), "cancel was prompt: {wall:?}");
        }
    }
}

#[test]
fn retry_ladder_recovers_a_trivial_problem_from_a_tiny_pop_cap() {
    let bench = by_name("ident").expect("benchmark exists");
    let options = SearchOptions {
        max_popped: 3,
        retry_ladder: true,
        ..SearchOptions::default()
    };
    let report = Synthesizer::with_options(options).synthesize_report(&bench.problem);
    let rungs: Vec<Rung> = report.attempts.iter().map(|a| a.rung).collect();
    assert_eq!(rungs, vec![Rung::Full, Rung::Degraded, Rung::Baseline]);
    let solved = report.outcome.expect("baseline rung solves identity");
    assert_eq!(solved.program.body().to_string(), "l");
}
