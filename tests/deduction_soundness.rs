//! Property tests for the deduction rules.
//!
//! The load-bearing invariant: deduced rows are **necessary** conditions.
//! If a known step function `f` (and initial value `e`) makes the
//! combinator program satisfy the parent examples, then `f` satisfies
//! every row the rule deduces — i.e. deduction never prunes the truth.
//!
//! We generate random inputs, compute parent examples by *running* a known
//! program, deduce, and check the known function against the deduced rows.
//! (Originally `proptest`; now seeded random generation via the vendored
//! `rand` shim — same invariants, deterministic failures.)

use lambda2::lang::ast::Comb;
use lambda2::lang::env::Env;
use lambda2::lang::eval::eval;
use lambda2::lang::parser::parse_expr;
use lambda2::lang::symbol::Symbol;
use lambda2::lang::value::Value;
use lambda2::synth::deduce::{deduce, CollectionArg, Outcome};
use lambda2::synth::{ExampleRow, Spec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ints(ns: &[i64]) -> Value {
    ns.iter().copied().map(Value::Int).collect()
}

/// Builds parent rows by running `program` (over free variable `l`) on the
/// given inputs; returns rows plus the collection argument for `l`.
fn rows_from_program(program: &str, inputs: &[Vec<i64>]) -> (Vec<ExampleRow>, CollectionArg) {
    let l = Symbol::intern("l");
    let expr = parse_expr(program).expect("parses");
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for input in inputs {
        let iv = ints(input);
        let env = Env::empty().bind(l, iv.clone());
        let mut fuel = 100_000;
        let out = eval(&expr, &env, &mut fuel).expect("ground truth evaluates");
        rows.push(ExampleRow::new(env, out));
        values.push(iv);
    }
    (
        rows,
        CollectionArg {
            values,
            var: Some(l),
        },
    )
}

/// Checks `f_body` (over `binders`) against every deduced row.
fn f_satisfies_rows(f_body: &str, spec: &Spec) -> bool {
    let body = parse_expr(f_body).expect("parses");
    spec.rows().iter().all(|row| {
        let mut fuel = 100_000;
        eval(&body, &row.env, &mut fuel).ok() == Some(row.output.clone())
    })
}

/// A pool of (combinator, function body, init expr) ground truths. Binder
/// names follow the synthesizer's conventions: map/filter bind `x`,
/// foldl binds `a x`, foldr binds `x a`, recl binds `x xs r`.
const TRUTHS: &[(Comb, &str, &str)] = &[
    (Comb::Map, "(+ x 1)", ""),
    (Comb::Map, "(* x x)", ""),
    (Comb::Map, "(- 0 x)", ""),
    (Comb::Filter, "(> x 0)", ""),
    (Comb::Filter, "(= (% x 2) 0)", ""),
    (Comb::Foldl, "(+ a x)", "0"),
    (Comb::Foldl, "(cons x a)", "[]"),
    (Comb::Foldl, "(+ a 1)", "0"),
    (Comb::Foldr, "(cons x a)", "[]"),
    (Comb::Foldr, "(cons x (cons x a))", "[]"),
    (Comb::Recl, "(cons x r)", "[]"),
    (Comb::Recl, "(if (empty? xs) r (cons x r))", "[]"),
];

fn binders(comb: Comb) -> Vec<Symbol> {
    let names: &[&str] = match comb {
        Comb::Map | Comb::Filter | Comb::Mapt => &["x"],
        Comb::Foldl => &["a", "x"],
        Comb::Foldr => &["x", "a"],
        Comb::Recl => &["x", "xs", "r"],
        Comb::Foldt => &["v", "rs"],
    };
    names.iter().map(|n| Symbol::intern(n)).collect()
}

/// Builds the full program text for a ground truth.
fn program_text(comb: Comb, f_body: &str, init: &str) -> String {
    let bs = binders(comb)
        .iter()
        .map(|s| s.as_str().to_owned())
        .collect::<Vec<_>>()
        .join(" ");
    match comb.init_index() {
        Some(_) => format!("({} (lambda ({bs}) {f_body}) {init} l)", comb.name()),
        None => format!("({} (lambda ({bs}) {f_body}) l)", comb.name()),
    }
}

fn random_lists(rng: &mut StdRng, n_range: std::ops::Range<usize>) -> Vec<Vec<i64>> {
    let n = rng.gen_range(n_range);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(0usize..5);
            (0..len).map(|_| rng.gen_range(-5i64..10)).collect()
        })
        .collect()
}

/// Necessity: the true step function satisfies every deduced row.
#[test]
fn deduced_rows_are_necessary() {
    let mut rng = StdRng::seed_from_u64(0xD1);
    for _ in 0..64 {
        let truth_idx = rng.gen_range(0..TRUTHS.len());
        let lists = random_lists(&mut rng, 1..5);
        let (comb, f_body, init) = TRUTHS[truth_idx];
        let program = program_text(comb, f_body, init);
        let (rows, coll) = rows_from_program(&program, &lists);

        // Per-row init values (inits in the pool are closed constants).
        let init_vals: Option<Vec<Value>> = comb.init_index().map(|_| {
            let e = parse_expr(init).expect("init parses");
            rows.iter()
                .map(|r| {
                    let mut fuel = 1_000;
                    eval(&e, &r.env, &mut fuel).expect("init evaluates")
                })
                .collect()
        });

        match deduce(
            comb,
            &rows,
            &coll,
            init_vals.as_deref(),
            &binders(comb),
            true,
        ) {
            Outcome::Refuted => {
                panic!("deduction refuted its own ground truth {program}")
            }
            Outcome::Deduced(d) => assert!(
                f_satisfies_rows(f_body, &d.fun_spec),
                "{f_body} violates a deduced row for {program}"
            ),
        }
    }
}

/// Refutation soundness for map: mismatched lengths are impossible.
#[test]
fn map_length_mismatch_always_refutes() {
    let mut rng = StdRng::seed_from_u64(0xD2);
    for _ in 0..64 {
        let input: Vec<i64> = {
            let len = rng.gen_range(0usize..6);
            (0..len).map(|_| rng.gen_range(-5i64..10)).collect()
        };
        let extra = rng.gen_range(1usize..3);
        let l = Symbol::intern("l");
        let iv = ints(&input);
        // Output longer than the input can never come from a map.
        let ov = ints(&vec![0; input.len() + extra]);
        let rows = vec![ExampleRow::new(Env::empty().bind(l, iv.clone()), ov)];
        let coll = CollectionArg {
            values: vec![iv],
            var: Some(l),
        };
        assert!(matches!(
            deduce(Comb::Map, &rows, &coll, None, &[Symbol::intern("x")], true),
            Outcome::Refuted
        ));
    }
}

/// Refutation soundness for filter: reordered outputs are impossible.
#[test]
fn filter_reorder_always_refutes() {
    let mut rng = StdRng::seed_from_u64(0xD3);
    let mut checked = 0;
    while checked < 64 {
        let mut input: Vec<i64> = {
            let len = rng.gen_range(2usize..6);
            (0..len).map(|_| rng.gen_range(0i64..50)).collect()
        };
        // Make elements distinct so reversal is a genuine reorder.
        input.sort_unstable();
        input.dedup();
        if input.len() < 2 {
            continue; // prop_assume equivalent: resample
        }
        checked += 1;
        let l = Symbol::intern("l");
        let iv = ints(&input);
        let reversed: Vec<i64> = input.iter().rev().copied().collect();
        let rows = vec![ExampleRow::new(
            Env::empty().bind(l, iv.clone()),
            ints(&reversed),
        )];
        let coll = CollectionArg {
            values: vec![iv],
            var: Some(l),
        };
        assert!(matches!(
            deduce(
                Comb::Filter,
                &rows,
                &coll,
                None,
                &[Symbol::intern("x")],
                true
            ),
            Outcome::Refuted
        ));
    }
}

/// Fold base check: an init that disagrees with an empty-collection row
/// is always refuted; one that agrees never is (for consistent rows).
#[test]
fn fold_base_check_is_exact() {
    let mut rng = StdRng::seed_from_u64(0xD4);
    for _ in 0..64 {
        let expected = rng.gen_range(-10i64..10);
        let wrong_delta = rng.gen_range(1i64..5);
        let l = Symbol::intern("l");
        let rows = vec![ExampleRow::new(
            Env::empty().bind(l, Value::nil()),
            Value::Int(expected),
        )];
        let coll = CollectionArg {
            values: vec![Value::nil()],
            var: Some(l),
        };
        let bs = [Symbol::intern("a"), Symbol::intern("x")];

        let good = vec![Value::Int(expected)];
        assert!(matches!(
            deduce(Comb::Foldl, &rows, &coll, Some(&good), &bs, true),
            Outcome::Deduced(_)
        ));

        let bad = vec![Value::Int(expected + wrong_delta)];
        assert!(matches!(
            deduce(Comb::Foldl, &rows, &coll, Some(&bad), &bs, true),
            Outcome::Refuted
        ));
    }
}
