//! End-to-end tests for the offline profiling layer: trace loading with
//! schema-version validation, `diff` alignment over real runs, collapsed
//! stacks, and the metrics-are-observation-only guarantee (toggling
//! [`SearchOptions::metrics`] changes no synthesized program, cost, or
//! search counter).

use std::path::PathBuf;
use std::time::Duration;

use lambda2::synth::{
    collapse_tree, diff_traces, load_trace, parse_trace, summarize, DiffOutcome, JsonlTracer,
    Problem, ProfileError, SearchOptions, Synthesizer, Trace, Weight, SCHEMA_VERSION,
};

fn evens() -> Problem {
    Problem::builder("evens")
        .param("l", "[int]")
        .returns("[int]")
        .example(&["[]"], "[]")
        .example(&["[1 2 3 4]"], "[2 4]")
        .example(&["[5 6]"], "[6]")
        .build()
        .unwrap()
}

fn sum() -> Problem {
    Problem::builder("sum")
        .param("l", "[int]")
        .returns("int")
        .example(&["[]"], "0")
        .example(&["[5]"], "5")
        .example(&["[5 3]"], "8")
        .example(&["[5 3 9]"], "17")
        .build()
        .unwrap()
}

/// Runs one traced synthesis into a temp file and loads the trace back.
fn traced_run(problem: &Problem, tag: &str) -> (Trace, PathBuf) {
    let path = std::env::temp_dir().join(format!("lambda2-profile-test-{tag}.jsonl"));
    let mut tracer = JsonlTracer::create(&path).unwrap();
    Synthesizer::new()
        .synthesize_traced(problem, &mut tracer)
        .expect("solves");
    tracer.finish().unwrap();
    let trace = load_trace(&path).unwrap();
    (trace, path)
}

/// Two traced runs of the same deterministic problem diff as identical:
/// the `t_us` wall-clock fields differ, but the alignment keys strip them.
#[test]
fn diff_of_identical_runs_is_empty() {
    let (a, pa) = traced_run(&sum(), "diff-a");
    let (b, pb) = traced_run(&sum(), "diff-b");
    let _ = std::fs::remove_file(&pa);
    let _ = std::fs::remove_file(&pb);
    assert!(!a.is_empty());
    // Timestamps differ between the runs (so the diff is genuinely key
    // based), yet the outcome is identical.
    assert!(a.has_timestamps() && b.has_timestamps());
    assert_eq!(
        diff_traces(&a, &b),
        DiffOutcome::Identical { events: a.len() }
    );
}

/// Swapping two adjacent events with different keys yields a divergence
/// at exactly the swap point, reporting both keys.
#[test]
fn permuted_trace_reports_the_first_divergence() {
    let (a, pa) = traced_run(&evens(), "perm");
    let _ = std::fs::remove_file(&pa);
    let key = |t: &Trace, i: usize| lambda2::synth::obs::profile::event_key(&t.events[i]);

    // Find the first adjacent pair with distinct keys (deterministically).
    let i = (0..a.len() - 1)
        .find(|&i| key(&a, i) != key(&a, i + 1))
        .expect("a real trace has at least two distinct adjacent events");
    let mut b = a.clone();
    b.events.swap(i, i + 1);

    match diff_traces(&a, &b) {
        DiffOutcome::Divergence {
            index,
            key_a,
            key_b,
        } => {
            assert_eq!(index, i);
            assert_eq!(key_a, key(&a, i));
            assert_eq!(key_b, key(&a, i + 1));
        }
        other => panic!("expected divergence, got {other:?}"),
    }
}

/// Dropping a suffix is reported as truncation (a run that stopped
/// early), not as a divergence.
#[test]
fn truncated_trace_is_reported_as_truncated_not_divergent() {
    let (a, pa) = traced_run(&evens(), "trunc");
    let _ = std::fs::remove_file(&pa);
    let mut b = a.clone();
    b.events.truncate(a.len() - 3);
    assert_eq!(
        diff_traces(&a, &b),
        DiffOutcome::Truncated {
            common: a.len() - 3,
            len_a: a.len(),
            len_b: a.len() - 3,
        }
    );
    // Symmetric in the other direction.
    assert!(matches!(
        diff_traces(&b, &a),
        DiffOutcome::Truncated { common, .. } if common == a.len() - 3
    ));
}

/// Traces from other schema versions (or the unversioned pre-PR 5
/// format) are rejected with the offending line, not misparsed.
#[test]
fn old_and_future_schema_versions_are_rejected() {
    let future = format!(
        "{{\"v\":1,\"ev\":\"pop\",\"kind\":\"hyp\",\"cost\":1,\"holes\":1,\"sketch\":\"?1\"}}\n\
         {{\"v\":{},\"ev\":\"pop\",\"kind\":\"hyp\",\"cost\":2,\"holes\":1,\"sketch\":\"?2\"}}",
        SCHEMA_VERSION + 1
    );
    assert_eq!(
        parse_trace(&future).unwrap_err(),
        ProfileError::Version {
            line: 2,
            found: Some(SCHEMA_VERSION as i64 + 1)
        }
    );
    let unversioned = r#"{"ev":"pop","kind":"hyp","cost":1,"holes":1,"sketch":"?1"}"#;
    assert_eq!(
        parse_trace(unversioned).unwrap_err(),
        ProfileError::Version {
            line: 1,
            found: None
        }
    );
}

/// Progress heartbeats are wall-clock driven, so `diff` skips them the
/// way it strips `t_us`: two runs that differ only in where (and whether)
/// heartbeats landed still diff as identical.
#[test]
fn diff_ignores_progress_heartbeats() {
    let pop = r#"{"v":1,"ev":"pop","kind":"hyp","cost":1,"holes":1,"sketch":"?1"}"#;
    let verify = r#"{"v":1,"ev":"verify","ok":true,"cost":7,"program":"l"}"#;
    let hb = |q: u64| {
        format!(
            r#"{{"v":1,"ev":"progress","queue":{q},"best_cost":3,"budget":{{"pops":{q}}},"phases":{{}}}}"#
        )
    };
    let a = parse_trace(&[pop.to_owned(), hb(5), verify.to_owned()].join("\n")).unwrap();
    let b = parse_trace(&[hb(9), pop.to_owned(), verify.to_owned(), hb(2)].join("\n")).unwrap();
    let c = parse_trace(&[pop, verify].join("\n")).unwrap();
    assert_eq!(diff_traces(&a, &b), DiffOutcome::Identical { events: 2 });
    assert_eq!(diff_traces(&a, &c), DiffOutcome::Identical { events: 2 });
    // Real differences still surface.
    let d = parse_trace(&[verify.to_owned(), hb(1)].join("\n")).unwrap();
    assert!(!diff_traces(&a, &d).is_identical());
}

/// The summary and collapsed stacks of a real run are well-formed: event
/// counts line up, the solution is attributed, time adds up, and both
/// weightings produce the same stack set.
#[test]
fn summary_and_tree_cover_a_real_run() {
    let (trace, path) = traced_run(&sum(), "summary");
    let _ = std::fs::remove_file(&path);
    let s = summarize(&trace);
    assert_eq!(s.events, trace.len());
    let (program, _cost) = s.solution.as_ref().expect("solved run records a solution");
    assert!(
        program.contains("foldl") || program.contains("foldr"),
        "{program}"
    );
    let t = s.time.as_ref().expect("sequential traces carry timestamps");
    assert_eq!(
        t.total_us,
        t.deduce_us + t.enumerate_us + t.verify_us + t.search_us
    );

    let pops = collapse_tree(&trace, Weight::Pops).unwrap();
    let time = collapse_tree(&trace, Weight::Time).unwrap();
    assert!(pops.iter().any(|(stack, _)| stack == "root"));
    let stacks = |v: &[(String, u64)]| v.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>();
    assert_eq!(stacks(&pops), stacks(&time));
    let total_pops: u64 = pops.iter().map(|(_, w)| w).sum();
    let hyp_pops = s.pops_by_kind.values().sum::<u64>();
    assert_eq!(total_pops, hyp_pops);
}

/// Toggling metrics collection is pure observation: over the quick
/// catalog, the synthesized program, its cost, and every search counter
/// are identical, and only the metrics histograms themselves appear or
/// disappear.
#[test]
fn metrics_toggle_changes_no_search_results() {
    const QUICK: &[&str] = &["ident", "incr", "evens", "sum", "reverse"];
    for name in QUICK {
        let bench = lambda2::suite::by_name(name).expect("suite problem");
        let problem = bench.problem.clone();
        let base = bench.tune(SearchOptions::default());
        let run = |metrics: bool| {
            let options = SearchOptions {
                metrics,
                timeout: Some(Duration::from_secs(30)),
                ..base.clone()
            };
            Synthesizer::with_options(options)
                .synthesize(&problem)
                .expect("solves")
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.program.to_string(), off.program.to_string());
        assert_eq!(on.cost, off.cost);
        let counters = |s: &lambda2::synth::Stats| {
            (
                s.popped,
                s.expansions,
                s.refuted,
                s.static_refutations,
                s.ill_typed,
                s.closings,
                s.verified,
                s.verify_failures,
                s.enumerated_terms,
                s.store_hits,
                s.store_evictions,
            )
        };
        assert_eq!(counters(&on.stats), counters(&off.stats));
        assert!(!on.stats.metrics.is_empty(), "{}", problem.name());
        assert!(off.stats.metrics.is_empty(), "{}", problem.name());
        // The recorded pops histogram agrees with the pop counter.
        assert_eq!(on.stats.metrics.queue_depth.count(), on.stats.popped);
        assert_eq!(on.stats.metrics.pop_cost.count(), on.stats.popped);
    }
}

/// Schema completeness: every [`TraceEvent`] variant round-trips through
/// the JSONL tracer and `parse_trace`, with a stable `event_key` (its
/// canonical JSON minus the volatile `t_us`). The exhaustive `match`
/// below makes adding a variant without extending this test — and
/// therefore without parser-side thought — a compile error, not a silent
/// schema hole.
#[test]
fn every_trace_event_variant_round_trips_through_the_parser() {
    use lambda2::synth::obs::profile::event_key;
    use lambda2::synth::obs::{PopKind, RefuteReason, StoreAction};
    use lambda2::synth::{BudgetSnapshot, PhaseTimes, TraceEvent, Tracer};

    let samples = vec![
        TraceEvent::Pop {
            n: 1,
            kind: PopKind::Hypothesis,
            cost: 3,
            holes: 1,
            sketch: "(map (lambda (x) ?1) l)".into(),
        },
        TraceEvent::Plan {
            comb: "foldl",
            coll: "l".into(),
            init: Some("0".into()),
            delta_cost: 7,
            rows: 3,
        },
        TraceEvent::Refute {
            comb: "map",
            coll: "l".into(),
            init: None,
            reason: RefuteReason::Deduction,
        },
        TraceEvent::StaticRefute {
            comb: "filter",
            coll: "l".into(),
            init: None,
            domain: "length",
            pruned: false,
        },
        TraceEvent::Tier {
            tier: 2,
            cost: 5,
            fills: 1,
        },
        TraceEvent::Store {
            action: StoreAction::Create,
            terms: 10,
            bytes: 4096,
        },
        TraceEvent::Verify {
            ok: true,
            cost: 7,
            program: "(filter (lambda (x) (> x 0)) l)".into(),
        },
        TraceEvent::Fault {
            site: "verify.candidate",
            detail: "boom".into(),
        },
        TraceEvent::Progress {
            budget: BudgetSnapshot {
                pops: 100,
                fuel_spent: 5,
                peak_store_bytes: 1024,
                ticks: 400,
                elapsed: Duration::from_millis(3),
                exceeded: None,
            },
            queue: 7,
            best_cost: 9,
            phases: PhaseTimes::default(),
        },
    ];

    // Compile-time completeness: a new `TraceEvent` variant makes this
    // match non-exhaustive. Extend `samples` above when you extend it.
    let discriminant = |ev: &TraceEvent| match ev {
        TraceEvent::Pop { .. } => "pop",
        TraceEvent::Plan { .. } => "plan",
        TraceEvent::Refute { .. } => "refute",
        TraceEvent::StaticRefute { .. } => "static-refute",
        TraceEvent::Tier { .. } => "tier",
        TraceEvent::Store { .. } => "store",
        TraceEvent::Verify { .. } => "verify",
        TraceEvent::Fault { .. } => "fault",
        TraceEvent::Progress { .. } => "progress",
    };
    let covered: std::collections::BTreeSet<&str> = samples.iter().map(discriminant).collect();
    assert_eq!(covered.len(), samples.len(), "one sample per variant");

    // Serialize all samples through the real tracer (which adds `t_us`),
    // then parse the file back with the schema-validating parser.
    let mut buf = Vec::new();
    {
        let mut tracer = JsonlTracer::new(&mut buf);
        for ev in &samples {
            tracer.emit(ev.clone());
        }
        assert_eq!(tracer.finish().unwrap(), samples.len() as u64);
    }
    let text = String::from_utf8(buf).unwrap();
    let trace = parse_trace(&text).expect("every variant parses");
    assert_eq!(trace.len(), samples.len());

    for (ev, parsed) in samples.iter().zip(&trace.events) {
        // The alignment key — canonical JSON minus `t_us` — is exactly
        // the event's own serialization: stable across emit+parse.
        assert_eq!(event_key(parsed), ev.to_json().to_string());
        // And the `ev` discriminator survives unchanged.
        assert_eq!(
            parsed
                .get("ev")
                .and_then(lambda2::synth::obs::json::Json::as_str),
            Some(discriminant(ev))
        );
    }

    // The summary accepts the synthetic trace (unknown-to-it variants
    // like `progress` are tolerated, not fatal).
    let s = summarize(&trace);
    assert_eq!(s.events, samples.len());
}
