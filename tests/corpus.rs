//! End-to-end tests for cross-run observability: the corpus record store,
//! the regression watchdog over real synthesized runs, and the
//! progress-heartbeats-are-observation-only guarantee (toggling
//! [`SearchOptions::progress`] changes no synthesized program, cost, or
//! search counter).

use std::path::PathBuf;
use std::time::Duration;

use lambda2::synth::{
    aggregate, options_fingerprint, regress, CollectTracer, Corpus, FindingKind, Measurement,
    Problem, RegressThresholds, SearchOptions, Synthesizer, TraceEvent,
};

const QUICK: &[&str] = &["ident", "incr", "evens", "sum", "reverse"];

fn temp_corpus(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lambda2-corpus-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_options(name: &str) -> (Problem, SearchOptions) {
    let bench = lambda2::suite::by_name(name).expect("suite problem");
    let options = SearchOptions {
        timeout: Some(Duration::from_secs(30)),
        ..bench.tune(SearchOptions::default())
    };
    (bench.problem.clone(), options)
}

fn measure(problem: &Problem, options: &SearchOptions) -> Measurement {
    let report = Synthesizer::with_options(options.clone()).synthesize_report(problem);
    assert!(report.outcome.is_ok(), "{} solves", problem.name());
    report.to_measurement(problem.name(), problem.examples().len())
}

/// Toggling progress heartbeats is pure observation: over the quick
/// catalog, the synthesized program, its cost, and every search counter
/// are identical with heartbeats on (and collected) and off.
#[test]
fn progress_heartbeats_change_no_search_results() {
    for name in QUICK {
        let (problem, base) = quick_options(name);
        let run = |progress: bool| {
            let options = SearchOptions {
                progress,
                ..base.clone()
            };
            let mut tracer = CollectTracer::default();
            let report =
                Synthesizer::with_options(options).synthesize_report_traced(&problem, &mut tracer);
            (report, tracer.events)
        };
        let (on, _events_on) = run(true);
        let (off, events_off) = run(false);
        let s_on = on.outcome.as_ref().expect("solves");
        let s_off = off.outcome.as_ref().expect("solves");
        assert_eq!(s_on.program.to_string(), s_off.program.to_string());
        assert_eq!(s_on.cost, s_off.cost);
        let m_on = on.to_measurement(problem.name(), problem.examples().len());
        let m_off = off.to_measurement(problem.name(), problem.examples().len());
        let counters = |m: &Measurement| {
            (
                m.stats.popped,
                m.stats.expansions,
                m.stats.refuted,
                m.stats.static_refutations,
                m.stats.ill_typed,
                m.stats.closings,
                m.stats.verified,
                m.stats.verify_failures,
                m.stats.enumerated_terms,
                m.stats.store_hits,
                m.stats.store_evictions,
            )
        };
        assert_eq!(counters(&m_on), counters(&m_off), "{name}");
        // Progress off emits no heartbeats, ever.
        assert!(
            !events_off
                .iter()
                .any(|e| matches!(e, TraceEvent::Progress { .. })),
            "{name}"
        );
    }
}

/// A search that runs past the heartbeat interval emits progress events
/// carrying a live budget snapshot, and they ride the governor's poll
/// cadence (bounded count, monotone pop counter).
#[test]
fn long_runs_emit_monotone_progress_heartbeats() {
    // No total function in the search space maps these inputs to these
    // outputs cheaply, so the search grinds until the timeout.
    let problem = Problem::builder("grind")
        .param("l", "[int]")
        .returns("[int]")
        .example(&["[1 2 3]"], "[999 123 7]")
        .example(&["[4]"], "[5612]")
        .example(&["[9 9]"], "[17 3]")
        .build()
        .unwrap();
    let options = SearchOptions {
        progress: true,
        timeout: Some(Duration::from_millis(900)),
        ..SearchOptions::default()
    };
    let mut tracer = CollectTracer::default();
    let report = Synthesizer::with_options(options).synthesize_report_traced(&problem, &mut tracer);
    let heartbeats: Vec<_> = tracer
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Progress { budget, .. } => Some(budget),
            _ => None,
        })
        .collect();
    // The run lasted several heartbeat intervals (200ms each), so at
    // least one fired; the adaptive cadence bounds how many.
    assert!(
        report.elapsed >= Duration::from_millis(600),
        "expected the grind to hit its timeout, finished in {:?}",
        report.elapsed
    );
    assert!(
        !heartbeats.is_empty(),
        "no heartbeat in {:?}",
        report.elapsed
    );
    assert!(
        heartbeats.len() as u128 <= report.elapsed.as_millis() / 100 + 2,
        "{} heartbeats in {:?}",
        heartbeats.len(),
        report.elapsed
    );
    // Budget snapshots are live and monotone.
    for pair in heartbeats.windows(2) {
        assert!(pair[1].pops >= pair[0].pops);
        assert!(pair[1].elapsed >= pair[0].elapsed);
    }
}

/// Real measurements round-trip through a corpus on disk, aggregate
/// cleanly, and two identically-configured runs regress clean while a
/// perturbed counter is flagged — the library contract behind
/// `l2 corpus regress` exit codes 0 and 1.
#[test]
fn corpus_round_trip_and_regression_watchdog_over_real_runs() {
    let dir = temp_corpus("watchdog");
    let corpus = Corpus::open(&dir).unwrap();

    let mut baseline = Vec::new();
    let mut fresh = Vec::new();
    for name in QUICK {
        let (problem, options) = quick_options(name);
        let fp = options_fingerprint(&options);
        baseline.push(lambda2::synth::RunRecord::of_measurement(
            &measure(&problem, &options),
            &fp,
        ));
        fresh.push(lambda2::synth::RunRecord::of_measurement(
            &measure(&problem, &options),
            &fp,
        ));
    }
    corpus.append(&baseline).unwrap();
    let stored = corpus.load().unwrap();
    assert_eq!(stored, baseline);

    let aggs = aggregate(&stored);
    assert_eq!(aggs.len(), QUICK.len());
    assert!(aggs.iter().all(|a| a.solved == 1 && a.counters_agree));

    // Identical configuration, deterministic engine: regress is clean
    // (wall check off — this is exactly CI's cross-machine mode).
    let thresholds = RegressThresholds {
        check_wall: false,
        ..RegressThresholds::default()
    };
    let findings = regress(&stored, &fresh, &thresholds);
    assert!(
        findings.iter().all(|f| f.kind != FindingKind::Regression),
        "{findings:?}"
    );

    // Deliberately perturb one counter in one fresh run: regression.
    let (problem, options) = quick_options("sum");
    let mut m = measure(&problem, &options);
    m.stats.popped += 1;
    let perturbed = vec![lambda2::synth::RunRecord::of_measurement(
        &m,
        &options_fingerprint(&options),
    )];
    let findings = regress(&stored, &perturbed, &thresholds);
    assert!(
        findings
            .iter()
            .any(|f| f.kind == FindingKind::Regression && f.detail.contains("popped")),
        "{findings:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Observation-only knobs share a fingerprint (so toggling them never
/// forks a baseline), while search-relevant option changes fork it.
#[test]
fn fingerprints_fork_on_search_options_only() {
    let (_, base) = quick_options("sum");
    let fp = options_fingerprint(&base);
    let mut observed = base.clone();
    observed.progress = true;
    observed.metrics = !observed.metrics;
    assert_eq!(fp, options_fingerprint(&observed));
    let mut forked = base.clone();
    forked.timeout = Some(Duration::from_secs(31));
    assert_ne!(fp, options_fingerprint(&forked));
}
