//! End-to-end tests for the serve daemon (`lambda2::synth::serve`).
//!
//! Covers the PR's acceptance criteria: the determinism bridge (a
//! problem submitted over the wire returns byte-identical results to a
//! local `l2 synth` run, warm cache on and off), bounded admission with
//! structured sheds, hostile-input survival, and graceful drain. The
//! crash-isolation test lives behind `--features failpoints` alongside
//! the rest of the fault-injection suite.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use lambda2::synth::obs::json::Json;
use lambda2::synth::serve::{
    frame, Backoff, Client, ClientError, ServeConfig, ServeSummary, Server,
};
use lambda2::synth::{
    load_access_log, load_records, parse_problem, AccessReport, Corpus, SearchOptions, Synthesizer,
};

/// Problems with default libraries, rendered in `.l2` surface syntax —
/// the same documents `l2 client` would send from a file.
const EVENS: &str = "(problem evens
  (params (l [int]))
  (returns [int])
  (example ([]) [])
  (example ([1 2 3 4]) [2 4])
  (example ([5 6]) [6])
  (example ([8]) [8])
  (example ([7 0 9]) [0]))";

const ROTATE: &str = "(problem rotate
  (params (l [int]))
  (returns [int])
  (example ([5]) [5])
  (example ([1 7]) [7 1])
  (example ([1 7 3]) [7 3 1]))";

const INCRS: &str = "(problem incrs
  (params (l [int]))
  (returns [int])
  (example ([]) [])
  (example ([1 2]) [2 3])
  (example ([0 4 7]) [1 5 8]))";

/// A permutation λ² cannot express under default options: swap adjacent
/// pairs. The search runs until its wall-clock budget — a reliable way
/// to occupy a worker for a controlled time.
const STUCK: &str = "(problem stuck
  (params (l [int]))
  (returns [int])
  (example ([1 2 3 4]) [2 1 4 3])
  (example ([5 6]) [6 5])
  (example ([7 8 9 0]) [8 7 0 9]))";

fn start(config: ServeConfig) -> (String, Arc<AtomicBool>, thread::JoinHandle<ServeSummary>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().to_owned();
    let control = server.control();
    let handle = thread::spawn(move || server.run().expect("serve loop"));
    (addr, control, handle)
}

fn stop(control: &AtomicBool, handle: thread::JoinHandle<ServeSummary>) -> ServeSummary {
    control.store(true, Ordering::SeqCst);
    handle.join().expect("server thread")
}

fn synth_req(id: &str, source: &str, timeout_ms: u64) -> Json {
    Json::obj([
        ("v", 1u64.into()),
        ("op", "synth".into()),
        ("id", id.into()),
        ("problem", source.into()),
        ("timeout_ms", timeout_ms.into()),
    ])
}

fn status_of(resp: &Json) -> &str {
    resp.get("status")
        .and_then(Json::as_str)
        .expect("response carries a status")
}

/// The determinism bridge: for each problem, the served response must
/// match a local `Synthesizer` run byte for byte — program, cost, and
/// the full attempt ladder — with the warm cache enabled and disabled.
/// (Only cache-effectiveness counters may differ; they are not part of
/// the result.)
#[test]
fn served_results_match_local_synthesis_warm_and_cold() {
    for warm_bytes in [0usize, 32 << 20] {
        let config = ServeConfig {
            workers: 1,
            warm_cache_bytes: warm_bytes,
            ..ServeConfig::default()
        };
        let (addr, control, handle) = start(config);
        let mut client = Client::connect(&addr).expect("connect");
        // EVENS twice: the second pass re-uses warm stores when enabled,
        // which must not change the answer.
        for src in [EVENS, ROTATE, INCRS, EVENS] {
            let resp = client
                .call(&synth_req("bridge", src, 30_000))
                .expect("synth call");
            let problem = parse_problem(src).expect("test problem parses");
            let options = SearchOptions {
                timeout: Some(Duration::from_millis(30_000)),
                ..SearchOptions::default()
            };
            let report = Synthesizer::with_options(options).synthesize_report(&problem);
            let local = report.outcome.as_ref().expect("local run solves");
            assert_eq!(status_of(&resp), "ok", "warm={warm_bytes} src={src}");
            assert_eq!(
                resp.get("program").and_then(Json::as_str),
                Some(local.program.to_string().as_str()),
                "program must be byte-identical (warm={warm_bytes})"
            );
            assert_eq!(
                resp.get("cost").and_then(Json::as_u64),
                Some(u64::from(local.cost))
            );
            let attempts = resp
                .get("attempts")
                .and_then(Json::as_arr)
                .expect("attempt ladder");
            assert_eq!(attempts.len(), report.attempts.len());
            for (served, local) in attempts.iter().zip(&report.attempts) {
                assert_eq!(
                    served.get("rung").and_then(Json::as_str),
                    Some(local.rung.name())
                );
                let served_err = served
                    .get("error")
                    .and_then(Json::as_str)
                    .map(ToOwned::to_owned);
                assert_eq!(served_err, local.error.as_ref().map(ToString::to_string));
            }
        }
        let summary = stop(&control, handle);
        assert_eq!(summary.accepted, 4);
        assert_eq!(summary.completed, 4);
        assert_eq!(summary.solved, 4);
        assert_eq!(summary.crashed, 0);
    }
}

/// Admission control: with one worker and a one-slot queue, concurrent
/// requests past `workers + queue` are shed with structured `overloaded`
/// responses carrying a retry hint — and every request, shed or not,
/// gets exactly one answer. Afterwards the daemon serves normally.
#[test]
fn overload_sheds_structurally_and_recovers() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let (addr, control, handle) = start(config);

    // Occupy the worker (~1.2s search) and the single queue slot.
    let occupy: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let h = thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.call(&synth_req(&format!("slow{i}"), STUCK, 1_200))
                    .expect("slow call answered")
            });
            // Stagger so slow0 is executing before slow1 queues.
            thread::sleep(Duration::from_millis(300));
            h
        })
        .collect();

    // These must be shed: the worker and the queue slot are taken.
    let mut sheds = 0;
    for i in 0..3 {
        let mut c = Client::connect(&addr).expect("connect");
        let resp = c
            .call(&synth_req(&format!("shed{i}"), STUCK, 1_200))
            .expect("shed call answered");
        assert_eq!(status_of(&resp), "overloaded");
        assert!(
            resp.get("retry_after_ms").and_then(Json::as_u64).unwrap() > 0,
            "shed carries a retry hint"
        );
        sheds += 1;
    }
    for h in occupy {
        let resp = h.join().expect("slow client thread");
        // The stuck problem times out — but structurally, not with a shed.
        assert_ne!(status_of(&resp), "overloaded");
    }

    // The daemon recovers: a fresh request is admitted and solved.
    let mut c = Client::connect(&addr).expect("connect");
    let resp = c
        .call(&synth_req("after", EVENS, 30_000))
        .expect("post-overload call");
    assert_eq!(status_of(&resp), "ok");

    let summary = stop(&control, handle);
    assert_eq!(summary.shed, sheds);
    assert_eq!(summary.accepted, 3); // slow0, slow1, after
    assert_eq!(summary.crashed, 0);
}

/// Retrying through sheds with the seeded backoff eventually lands the
/// request once capacity frees up.
#[test]
fn client_retry_rides_out_overload() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let (addr, control, handle) = start(config);

    // Saturate: one executing (~800ms), one queued.
    let occupy: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let h = thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.call(&synth_req(&format!("slow{i}"), STUCK, 800))
                    .expect("answered")
            });
            thread::sleep(Duration::from_millis(250));
            h
        })
        .collect();

    let mut backoff = Backoff::new(Duration::from_millis(100), Duration::from_secs(2), 7);
    let resp = lambda2::synth::serve::request_with_retry(
        &addr,
        &synth_req("retry", EVENS, 30_000),
        10,
        &mut backoff,
    )
    .expect("retry loop concludes");
    assert_eq!(status_of(&resp), "ok", "retries outlast the saturation");
    for h in occupy {
        h.join().expect("slow client");
    }
    stop(&control, handle);
}

/// Hostile bytes on the wire: oversized length prefixes and garbage JSON
/// must never take the daemon down. Framing violations close that one
/// connection; protocol-level garbage gets a structured `error` and the
/// connection keeps serving.
#[test]
fn garbage_input_cannot_kill_the_daemon() {
    let (addr, control, handle) = start(ServeConfig::default());

    // 1. Raw garbage with a hostile length prefix: connection dropped.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
        raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
        raw.write_all(b"\xde\xad\xbe\xef garbage").unwrap();
        // The server closes; nothing to assert beyond "no crash".
    }
    // 2. A well-framed but non-JSON payload: structured error, then the
    //    same connection still answers a ping.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
        frame::write_frame(&mut raw, b"certainly not json").unwrap();
        let mut reader = frame::FrameReader::new(frame::MAX_FRAME_BYTES);
        let reply = reader.read_frame(&mut raw).unwrap().expect("error reply");
        let doc = lambda2::synth::obs::json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
        assert_eq!(status_of(&doc), "error");
        frame::write_frame(&mut raw, br#"{"op":"ping"}"#).unwrap();
        let pong = reader.read_frame(&mut raw).unwrap().expect("pong");
        let doc = lambda2::synth::obs::json::parse(std::str::from_utf8(&pong).unwrap()).unwrap();
        assert_eq!(status_of(&doc), "ok");
        raw.flush().unwrap();
    }
    // 3. An invalid problem: structured error, daemon unharmed.
    {
        let mut c = Client::connect(&addr).expect("connect");
        let resp = c
            .call(&synth_req(
                "bad",
                "(problem oops (params (l [int])))",
                1_000,
            ))
            .expect("answered");
        assert_eq!(status_of(&resp), "error");
    }
    // Still alive and solving.
    let mut c = Client::connect(&addr).expect("connect");
    let resp = c.call(&synth_req("ok", EVENS, 30_000)).expect("answered");
    assert_eq!(status_of(&resp), "ok");

    let summary = stop(&control, handle);
    assert!(summary.rejected >= 2, "garbage was counted: {summary:?}");
    assert_eq!(summary.crashed, 0);
}

/// Graceful drain: setting the control flag (what the CLI's SIGTERM
/// handler does) answers queued work with `shutting_down`, cancels
/// in-flight work after the grace period, and stops — well under the
/// 2-second bound the CI job enforces.
#[test]
fn drain_cancels_in_flight_and_answers_queued() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        drain_grace: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let (addr, control, handle) = start(config);

    // One long-running job in flight (10s budget — only cancellation
    // can end it quickly), one queued behind it.
    let clients: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let h = thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.call(&synth_req(&format!("drain{i}"), STUCK, 10_000))
                    .expect("answered during drain")
            });
            thread::sleep(Duration::from_millis(300));
            h
        })
        .collect();

    let drain_started = Instant::now();
    let summary = stop(&control, handle);
    let drained_in = drain_started.elapsed();

    let replies: Vec<Json> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    // The in-flight job was cancelled (structured, not ok); the queued
    // one was answered shutting_down.
    assert!(replies.iter().any(|r| status_of(r) == "shutting_down"));
    for r in &replies {
        assert_ne!(status_of(r), "ok");
    }
    assert_eq!(summary.drained, 1, "{summary:?}");
    assert!(
        drained_in < Duration::from_secs(2),
        "drain took {drained_in:?}"
    );
    assert!(summary.drain_elapsed < Duration::from_secs(2));
}

/// A `shutdown` protocol op triggers the same drain as the control flag.
#[test]
fn shutdown_op_drains() {
    let (addr, _control, handle) = start(ServeConfig::default());
    let mut c = Client::connect(&addr).expect("connect");
    let resp = c
        .call(&Json::obj([("op", "shutdown".into()), ("id", "s".into())]))
        .expect("shutdown acked");
    assert_eq!(status_of(&resp), "ok");
    assert_eq!(resp.get("draining").and_then(Json::as_bool), Some(true));
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.crashed, 0);
    // New connections are refused or see shutting_down; either way the
    // daemon is gone shortly after.
    match Client::connect(&addr) {
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) | Ok(_) => {}
    }
}

/// The `stats` op reports live counters.
#[test]
fn stats_op_reports_counters() {
    let (addr, control, handle) = start(ServeConfig::default());
    let mut c = Client::connect(&addr).expect("connect");
    let resp = c.call(&synth_req("s1", EVENS, 30_000)).expect("synth");
    assert_eq!(status_of(&resp), "ok");
    let stats = c.call(&Json::obj([("op", "stats".into())])).expect("stats");
    assert_eq!(status_of(&stats), "ok");
    let server = stats.get("server").expect("server counters");
    assert_eq!(server.get("accepted").and_then(Json::as_u64), Some(1));
    assert_eq!(server.get("completed").and_then(Json::as_u64), Some(1));
    assert_eq!(server.get("solved").and_then(Json::as_u64), Some(1));
    stop(&control, handle);
}

/// A fresh, empty scratch directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lambda2-serve-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The observability plane is observation-only: a fixed request
/// sequence against a daemon with everything ON (access log, slow-trace
/// capture at threshold 0, corpus records) returns byte-identical
/// programs, costs, attempt ladders, statuses, and request IDs to the
/// same sequence with everything OFF — and the ON run leaves exactly
/// the expected artifacts behind.
#[test]
fn observability_is_observation_only_and_leaves_artifacts() {
    let dir = temp_dir("diff");
    let run = |observe: bool| {
        let config = if observe {
            ServeConfig {
                workers: 1,
                access_log: Some(dir.join("access.jsonl")),
                slow_trace_ms: Some(0),
                slow_trace_dir: Some(dir.join("slow")),
                corpus_dir: Some(dir.join("corpus")),
                ..ServeConfig::default()
            }
        } else {
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            }
        };
        let (addr, control, handle) = start(config);
        let mut client = Client::connect(&addr).expect("connect");
        let mut replies = Vec::new();
        replies.push(
            client
                .call(&Json::obj([("op", "ping".into())]))
                .expect("ping"),
        );
        for src in [EVENS, ROTATE] {
            replies.push(client.call(&synth_req("d", src, 30_000)).expect("synth"));
        }
        replies.push(
            client
                .call(&synth_req(
                    "bad",
                    "(problem oops (params (l [int])))",
                    1_000,
                ))
                .expect("invalid problem answered"),
        );
        replies.push(client.call(&synth_req("d", INCRS, 30_000)).expect("synth"));
        replies.push(
            client
                .call(&Json::obj([("op", "stats".into())]))
                .expect("stats"),
        );
        (replies, stop(&control, handle))
    };
    let (on, on_summary) = run(true);
    let (off, off_summary) = run(false);

    // Result-bearing fields are identical reply by reply — including the
    // request IDs, which are minted whether or not anything records them.
    assert_eq!(on.len(), off.len());
    for (a, b) in on.iter().zip(&off) {
        for field in ["status", "program", "req_id", "error"] {
            assert_eq!(
                a.get(field).and_then(Json::as_str),
                b.get(field).and_then(Json::as_str),
                "field `{field}` must not depend on observability"
            );
        }
        assert_eq!(
            a.get("cost").and_then(Json::as_u64),
            b.get("cost").and_then(Json::as_u64)
        );
        let rungs = |r: &Json| -> Vec<String> {
            r.get("attempts")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|at| at.get("rung").and_then(Json::as_str))
                        .map(ToOwned::to_owned)
                        .collect()
                })
                .unwrap_or_default()
        };
        assert_eq!(rungs(a), rungs(b), "attempt ladder must be identical");
    }
    // The integer counters in the final `stats` reply agree too.
    let counters = |r: &Json| -> Vec<Option<u64>> {
        let server = r.get("server").expect("server counters");
        [
            "accepted",
            "completed",
            "solved",
            "shed",
            "crashed",
            "rejected",
            "drained",
        ]
        .iter()
        .map(|k| server.get(k).and_then(Json::as_u64))
        .collect()
    };
    assert_eq!(counters(&on[5]), counters(&off[5]));
    assert_eq!(on_summary.solved, off_summary.solved);

    // Artifacts of the ON run. Access log: one whole record per request,
    // in order, with the daemon's own request IDs.
    let records = load_access_log(&dir.join("access.jsonl")).expect("parse access log");
    assert_eq!(records.len(), 6);
    let ids: Vec<&str> = records.iter().map(|r| r.req_id.as_str()).collect();
    assert_eq!(ids, ["c1-r1", "c1-r2", "c1-r3", "c1-r4", "c1-r5", "c1-r6"]);
    let statuses: Vec<&str> = records.iter().map(|r| r.status.as_str()).collect();
    assert_eq!(statuses, ["ok", "ok", "ok", "error", "ok", "ok"]);
    for r in &records {
        assert!(
            !r.shed && !r.crashed,
            "nothing was shed or crashed: {ids:?}"
        );
    }
    // Executed jobs carry timings, a problem name, and an options
    // fingerprint; connection-thread records do not.
    for executed in [&records[1], &records[2], &records[4]] {
        assert!(executed.service_ms.is_some(), "{}", executed.req_id);
        assert!(executed.queue_wait_ms.is_some());
        assert!(executed.problem.is_some());
        assert!(executed.fingerprint.is_some());
    }
    assert!(records[0].service_ms.is_none(), "ping decides on the spot");

    // Slow traces at threshold 0: one non-empty file per executed job,
    // named by request ID.
    assert_eq!(on_summary.slow_traces, 3, "{on_summary:?}");
    for id in ["c1-r2", "c1-r3", "c1-r5"] {
        let trace = dir.join("slow").join(format!("{id}.jsonl"));
        let meta = std::fs::metadata(&trace).expect("slow trace exists");
        assert!(meta.len() > 0, "{id}: slow trace is non-empty");
    }
    assert_eq!(
        std::fs::read_dir(dir.join("slow")).unwrap().count(),
        3,
        "no extra slow traces"
    );

    // Corpus records are keyed by the same request IDs.
    let store = Corpus::open(&dir.join("corpus"))
        .expect("corpus")
        .store_path();
    let runs = load_records(&store).expect("parse corpus");
    let run_ids: Vec<&str> = runs.iter().filter_map(|r| r.req_id()).collect();
    assert_eq!(run_ids, ["c1-r2", "c1-r3", "c1-r5"]);
}

/// The access-log writer under load: concurrent connection threads and
/// workers append records to one file, and every line must still be a
/// whole, parseable record — `load_access_log` fails on any torn write.
/// Every request (ok or shed) produces exactly one record with a unique
/// request ID, and the offline analysis agrees with the daemon's own
/// shed accounting.
#[test]
fn access_log_interleaves_whole_lines_under_saturation() {
    let dir = temp_dir("torn");
    let log = dir.join("access.jsonl");
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 2,
        access_log: Some(log.clone()),
        ..ServeConfig::default()
    };
    let (addr, control, handle) = start(config);

    let clients = 8usize;
    let per_client = 6u64;
    let mut oks = 0u64;
    let mut sheds = 0u64;
    thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = &addr;
                scope.spawn(move || {
                    let mut c_ok = 0u64;
                    let mut c_shed = 0u64;
                    let mut client = Client::connect(addr).expect("connect");
                    for r in 0..per_client {
                        let src = [EVENS, ROTATE, INCRS][(c + r as usize) % 3];
                        let resp = client
                            .call(&synth_req(&format!("l{c}-{r}"), src, 30_000))
                            .expect("answered");
                        match status_of(&resp) {
                            "ok" => c_ok += 1,
                            "overloaded" => c_shed += 1,
                            other => panic!("unexpected status {other}"),
                        }
                    }
                    (c_ok, c_shed)
                })
            })
            .collect();
        for h in handles {
            let (c_ok, c_shed) = h.join().expect("client thread");
            oks += c_ok;
            sheds += c_shed;
        }
    });
    let summary = stop(&control, handle);

    let records = load_access_log(&log).expect("every line parses — no torn writes");
    let total = clients as u64 * per_client;
    assert_eq!(records.len() as u64, total, "one record per request");
    let mut ids: Vec<&str> = records.iter().map(|r| r.req_id.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, total, "request IDs are unique");

    let report = AccessReport::analyze(&records);
    assert_eq!(report.requests, total);
    assert_eq!(report.shed, summary.shed, "analysis matches the daemon");
    assert_eq!(report.shed, sheds, "analysis matches the clients");
    assert_eq!(report.statuses.get("ok").copied().unwrap_or(0), oks);
    assert!(
        report.service_ms(0.5) <= report.service_ms(0.99),
        "p50 <= p99"
    );
}

/// Live histograms ride the `stats` op and the final summary even with
/// every observability flag off — they are part of the daemon's shared
/// state, not the access log.
#[test]
fn stats_and_summary_carry_latency_histograms() {
    let (addr, control, handle) = start(ServeConfig::default());
    let mut c = Client::connect(&addr).expect("connect");
    for src in [EVENS, ROTATE] {
        let resp = c.call(&synth_req("h", src, 30_000)).expect("synth");
        assert_eq!(status_of(&resp), "ok");
    }
    let stats = c.call(&Json::obj([("op", "stats".into())])).expect("stats");
    assert_eq!(stats.get("req_id").and_then(Json::as_str), Some("c1-r3"));
    let server = stats.get("server").expect("server counters");
    for hist in ["queue_wait_us", "service_us", "frame_bytes"] {
        let count = server
            .get(hist)
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats carries `{hist}` summary"));
        assert!(count >= 2, "{hist}: {count} observations");
    }
    assert_eq!(
        server
            .get("ops")
            .and_then(|o| o.get("synth"))
            .and_then(Json::as_u64),
        Some(2)
    );
    assert!(
        server
            .get("clients")
            .map(|c| matches!(c, Json::Obj(pairs) if !pairs.is_empty()))
            .unwrap_or(false),
        "per-client counts present"
    );
    assert_eq!(server.get("slow_traces").and_then(Json::as_u64), Some(0));
    assert!(server
        .get("warm_cache_bytes")
        .and_then(Json::as_u64)
        .is_some());

    let summary = stop(&control, handle);
    assert_eq!(summary.service_us.count(), 2);
    assert_eq!(summary.queue_wait_us.count(), 2);
    assert!(summary.latency_ms(true, 0.5) <= summary.latency_ms(true, 0.99));
    let j = summary.to_json();
    assert!(j.get("service_us").and_then(|h| h.get("count")).is_some());
}

/// Crash isolation under fault injection: a request that panics inside
/// the engine yields a structured `error`, concurrent requests complete,
/// and the daemon serves the next request as if nothing happened.
#[cfg(feature = "failpoints")]
#[test]
fn a_panicking_request_cannot_take_the_daemon_down() {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let (addr, control, handle) = start(config);

    // A healthy request in flight on the second worker while the first
    // one crashes.
    let healthy = {
        let addr = addr.clone();
        thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            c.call(&synth_req("healthy", EVENS, 30_000))
                .expect("answered")
        })
    };
    let mut c = Client::connect(&addr).expect("connect");
    let crash = c
        .call(&Json::obj([
            ("op", "synth".into()),
            ("id", "boom".into()),
            ("problem", EVENS.into()),
            ("timeout_ms", 30_000u64.into()),
            ("failpoint", "serve.request".into()),
        ]))
        .expect("crash answered structurally");
    assert_eq!(status_of(&crash), "error");
    assert!(
        crash
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("crashed"),
        "error names the crash: {crash}"
    );
    let healthy = healthy.join().expect("healthy client");
    assert_eq!(status_of(&healthy), "ok");

    // The same daemon — and even the same worker pool — keeps serving.
    let next = c
        .call(&synth_req("next", ROTATE, 30_000))
        .expect("answered");
    assert_eq!(status_of(&next), "ok");

    let summary = stop(&control, handle);
    assert_eq!(summary.crashed, 1, "{summary:?}");
    assert!(summary.solved >= 2);
}
