//! End-to-end tests for the observability layer: trace sinks, phase
//! timing, the zero-cost-when-disabled guarantee, and the timeout option.

use std::time::{Duration, Instant};

use lambda2::synth::obs::{json, CollectTracer, JsonlTracer, TraceEvent, Tracer};
use lambda2::synth::{Problem, SearchOptions, SynthError, Synthesizer};

fn evens() -> Problem {
    Problem::builder("evens")
        .param("l", "[int]")
        .returns("[int]")
        .example(&["[]"], "[]")
        .example(&["[1 2 3 4]"], "[2 4]")
        .example(&["[5 6]"], "[6]")
        .build()
        .unwrap()
}

fn sum() -> Problem {
    Problem::builder("sum")
        .param("l", "[int]")
        .returns("int")
        .example(&["[]"], "0")
        .example(&["[5]"], "5")
        .example(&["[5 3]"], "8")
        .example(&["[5 3 9]"], "17")
        .build()
        .unwrap()
}

/// The JSONL sink writes one parseable object per line, every line carries
/// an `ev` discriminator, and the required event families all appear.
#[test]
fn jsonl_trace_is_well_formed_and_complete() {
    let path = std::env::temp_dir().join("lambda2-telemetry-test.jsonl");
    let mut tracer = JsonlTracer::create(&path).unwrap();
    let result = Synthesizer::new()
        .synthesize_traced(&sum(), &mut tracer)
        .expect("solves");
    let lines = tracer.finish().unwrap();
    assert!(lines > 0);

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let mut kinds = std::collections::BTreeSet::new();
    let mut count = 0u64;
    for line in text.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        kinds.insert(v.get("ev").unwrap().as_str().unwrap().to_owned());
        count += 1;
    }
    assert_eq!(count, lines);
    for required in ["pop", "plan", "refute", "store", "verify"] {
        assert!(
            kinds.contains(required),
            "missing `{required}` in {kinds:?}"
        );
    }
    // And the run actually found the fold.
    assert!(result.program.body().to_string().contains("foldl"));
}

/// The in-memory tracer sees the same event stream shape, and the pop
/// counter in the events matches the popped stat.
#[test]
fn collect_tracer_pop_events_match_stats() {
    let mut tracer = CollectTracer::default();
    let result = Synthesizer::new()
        .synthesize_traced(&evens(), &mut tracer)
        .expect("solves");
    let pops: Vec<u64> = tracer
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Pop { n, .. } => Some(*n),
            _ => None,
        })
        .collect();
    assert_eq!(pops.len() as u64, result.stats.popped);
    // Pop numbers are the 1-based running counter.
    assert_eq!(pops.first(), Some(&1));
    assert_eq!(pops.last(), Some(&result.stats.popped));
    // The successful verification is the last verify event.
    let last_verify = tracer
        .events
        .iter()
        .rev()
        .find_map(|e| match e {
            TraceEvent::Verify { ok, program, .. } => Some((*ok, program.clone())),
            _ => None,
        })
        .expect("at least one verify event");
    assert!(last_verify.0);
    assert_eq!(last_verify.1, result.program.body().to_string());
}

/// Phase timings are nonzero on a real run and their sum never exceeds
/// the run's wall-clock elapsed (the phases partition disjoint regions).
#[test]
fn phase_timings_are_nonzero_and_sum_within_elapsed() {
    let result = Synthesizer::new().synthesize(&sum()).expect("solves");
    let phases = &result.stats.phases;
    assert!(phases.total() > Duration::ZERO, "no phase time recorded");
    assert!(phases.enumerate > Duration::ZERO, "enumeration untimed");
    assert!(
        phases.total() <= result.elapsed,
        "phases {} exceed elapsed {:?}",
        phases,
        result.elapsed
    );
}

/// A disabled tracer must never receive an event — call sites are required
/// to check `enabled()` before constructing payloads.
#[test]
fn disabled_tracer_receives_zero_events_and_same_answer() {
    struct CountingDisabled {
        emitted: usize,
    }
    impl Tracer for CountingDisabled {
        fn enabled(&self) -> bool {
            false
        }
        fn emit(&mut self, _event: TraceEvent) {
            self.emitted += 1;
        }
    }

    let mut off = CountingDisabled { emitted: 0 };
    let traced = Synthesizer::new()
        .synthesize_traced(&evens(), &mut off)
        .expect("solves");
    assert_eq!(off.emitted, 0, "disabled tracer received events");

    // And tracing (on or off) does not change the search's answer.
    let plain = Synthesizer::new().synthesize(&evens()).expect("solves");
    let mut on = CollectTracer::default();
    let full = Synthesizer::new()
        .synthesize_traced(&evens(), &mut on)
        .expect("solves");
    assert_eq!(traced.program.to_string(), plain.program.to_string());
    assert_eq!(full.program.to_string(), plain.program.to_string());
    assert_eq!(traced.cost, plain.cost);
    assert_eq!(traced.stats.popped, plain.stats.popped);
    assert!(!on.events.is_empty());
}

/// Regression: `SearchOptions::timeout` is honored — an unsolvable search
/// under a tiny budget reports `Timeout` promptly instead of running on.
#[test]
fn timeout_option_is_honored() {
    // Arbitrary list-to-list junk: nothing under the default cost ceiling
    // fits, and the [int] -> [int] term space is far too large to exhaust
    // within the budget, so the clock is what stops the search.
    let p = Problem::builder("impossible")
        .param("l", "[int]")
        .returns("[int]")
        .example(&["[1]"], "[17 3]")
        .example(&["[2 5]"], "[4]")
        .example(&["[9]"], "[0 0 0]")
        .example(&["[3 3 3]"], "[8 1]")
        .build()
        .unwrap();
    let options = SearchOptions {
        timeout: Some(Duration::from_millis(150)),
        ..SearchOptions::default()
    };
    let start = Instant::now();
    let err = Synthesizer::with_options(options)
        .synthesize(&p)
        .unwrap_err();
    let waited = start.elapsed();
    assert_eq!(err, SynthError::Timeout);
    // The loop checks the clock every 64 pops; generous slack for CI.
    assert!(waited < Duration::from_secs(10), "took {waited:?}");
}
