//! Bounded soak smoke for the serve daemon (ignored by default; CI runs
//! it in release with `-- --ignored`). Mixed good/bad traffic — quick
//! solvable problems, invalid problems, protocol garbage, and (under
//! `--features failpoints`) engine panics — hammers the daemon for
//! `LAMBDA2_SOAK_SECS` seconds (default 60). Throughout, the byte
//! accounting the daemon itself reports must stay bounded: the warm
//! cache honors its configured budget (the RSS proxy — the only
//! unbounded-growth candidate in shared state), and the access log
//! grows linearly in requests, not time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use lambda2::synth::obs::json::Json;
use lambda2::synth::serve::{Client, ServeConfig, Server};
use lambda2::synth::{load_access_log, AccessReport};

const EVENS: &str = "(problem evens
  (params (l [int]))
  (returns [int])
  (example ([]) [])
  (example ([1 2 3 4]) [2 4])
  (example ([5 6]) [6]))";

const ROTATE: &str = "(problem rotate
  (params (l [int]))
  (returns [int])
  (example ([5]) [5])
  (example ([1 7]) [7 1])
  (example ([1 7 3]) [7 3 1]))";

const INVALID: &str = "(problem oops (params (l [int])))";

/// Warm-cache byte budget for the run; the daemon must never report
/// holding more than this plus one entry's worth of slack.
const WARM_BUDGET: usize = 8 << 20;

/// Per-request ceiling on access-log growth. Records are one JSON line
/// of short fields; a kilobyte of slack per request catches any
/// accidental payload echo (problem sources are hundreds of bytes).
const LOG_BYTES_PER_REQUEST: u64 = 1024;

#[test]
#[ignore = "60s soak; run explicitly or via CI with -- --ignored"]
fn soak_byte_accounting_stays_bounded() {
    let secs: u64 = std::env::var("LAMBDA2_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let dir = std::env::temp_dir().join(format!("lambda2-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let log = dir.join("access.jsonl");

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 4,
        warm_cache_bytes: WARM_BUDGET,
        access_log: Some(log.clone()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_owned();
    let control = server.control();
    let daemon = thread::spawn(move || server.run().expect("serve loop"));

    let deadline = Instant::now() + Duration::from_secs(secs);
    let sent = AtomicU64::new(0);
    thread::scope(|scope| {
        // Four clients cycling through the traffic mix.
        for c in 0..4usize {
            let addr = &addr;
            let sent = &sent;
            scope.spawn(move || {
                let mut i = c;
                while Instant::now() < deadline {
                    i += 1;
                    let (src, timeout_ms) = match i % 4 {
                        0 => (EVENS, 30_000u64),
                        1 => (ROTATE, 30_000),
                        2 => (INVALID, 1_000),
                        // An inexpressible problem with a tiny budget:
                        // exercises the unsolved path without stalling.
                        _ => (
                            "(problem stuck
  (params (l [int]))
  (returns [int])
  (example ([1 2 3 4]) [2 1 4 3])
  (example ([5 6]) [6 5]))",
                            50,
                        ),
                    };
                    #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
                    let mut pairs = vec![
                        ("v".to_owned(), Json::from(1u64)),
                        ("op".to_owned(), "synth".into()),
                        ("id".to_owned(), format!("soak{c}-{i}").into()),
                        ("problem".to_owned(), src.into()),
                        ("timeout_ms".to_owned(), timeout_ms.into()),
                    ];
                    // Under fault injection, every 16th request panics
                    // inside the engine; the guard must absorb it.
                    #[cfg(feature = "failpoints")]
                    if i % 16 == 0 {
                        pairs.push(("failpoint".to_owned(), "serve.request".into()));
                    }
                    let request = Json::Obj(pairs);
                    match Client::connect(addr).and_then(|mut cl| cl.call(&request)) {
                        Ok(_) => {
                            sent.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("soak client error: {e}"),
                    }
                }
            });
        }
        // A fifth client stirs in protocol garbage and polls the byte
        // accounting via `stats` while the load runs.
        let addr = &addr;
        let sent = &sent;
        scope.spawn(move || {
            use std::io::Write;
            while Instant::now() < deadline {
                if let Ok(mut raw) = std::net::TcpStream::connect(addr) {
                    let _ = raw.write_all(&6u32.to_be_bytes());
                    let _ = raw.write_all(b"not js");
                }
                let mut cl = Client::connect(addr).expect("stats connect");
                let stats = cl
                    .call(&Json::obj([("op", "stats".into())]))
                    .expect("stats reply");
                sent.fetch_add(1, Ordering::Relaxed);
                let server = stats.get("server").expect("server counters");
                let warm_bytes = server
                    .get("warm_cache_bytes")
                    .and_then(Json::as_u64)
                    .expect("warm_cache_bytes");
                assert!(
                    warm_bytes <= (WARM_BUDGET + (1 << 20)) as u64,
                    "warm cache exceeds its budget mid-soak: {warm_bytes}"
                );
                thread::sleep(Duration::from_millis(500));
            }
        });
    });
    control.store(true, Ordering::SeqCst);
    let summary = daemon.join().expect("server thread");
    let total = sent.load(Ordering::Relaxed);

    // The log parses whole (no torn writes over the full soak) and its
    // size is linear in requests — observability cost is bounded.
    let records = load_access_log(&log).expect("parse the whole soak log");
    let report = AccessReport::analyze(&records);
    assert!(report.requests >= total, "log saw every framed request");
    let log_bytes = std::fs::metadata(&log).expect("log metadata").len();
    assert!(
        log_bytes <= records.len() as u64 * LOG_BYTES_PER_REQUEST,
        "access log too large: {log_bytes} bytes for {} records",
        records.len()
    );
    assert_eq!(report.shed, summary.shed);
    println!(
        "soak: {total} requests in {secs}s, {} records, {} log bytes, \
         {} shed, {} crashed",
        records.len(),
        log_bytes,
        summary.shed,
        summary.crashed
    );
}
