//! Cross-engine agreement and ablation behavior:
//! the no-deduction ablation and the pure-enumeration baseline must stay
//! *sound* (only ever return fitting programs) even where they lose the
//! paper's speed, and all engines agree on easy problems.

use std::time::Duration;

use lambda2::suite::by_name;
use lambda2::synth::baseline::{synthesize_baseline, BaselineOptions};
use lambda2::synth::{SearchOptions, Synthesizer};

fn opts(secs: u64) -> SearchOptions {
    SearchOptions {
        timeout: Some(Duration::from_secs(secs)),
        ..SearchOptions::default()
    }
}

#[test]
fn all_engines_solve_ident_identically() {
    let bench = by_name("ident").unwrap();
    let full = Synthesizer::with_options(opts(30))
        .synthesize(&bench.problem)
        .expect("full engine");
    let ablated = Synthesizer::with_options(opts(30))
        .deduction(false)
        .synthesize(&bench.problem)
        .expect("no-deduce engine");
    let base = synthesize_baseline(
        &bench.problem,
        &BaselineOptions {
            timeout: Some(Duration::from_secs(30)),
            ..BaselineOptions::default()
        },
    )
    .expect("baseline engine");
    assert_eq!(full.program.body().to_string(), "l");
    assert_eq!(ablated.program.body().to_string(), "l");
    assert_eq!(base.program.body().to_string(), "l");
}

#[test]
fn no_deduce_solves_simple_maps_but_slower() {
    let bench = by_name("incr").unwrap();
    let full = Synthesizer::with_options(opts(60))
        .synthesize(&bench.problem)
        .expect("full engine");
    let ablated = Synthesizer::with_options(opts(60))
        .deduction(false)
        .synthesize(&bench.problem)
        .expect("no-deduce engine solves incr");
    // Both fit the examples; deduction does strictly less exploration.
    assert!(full.program.satisfies_problem(&bench.problem, 100_000));
    assert!(ablated.program.satisfies_problem(&bench.problem, 100_000));
    assert!(
        ablated.stats.verified >= full.stats.verified,
        "ablation should verify at least as many candidates (got {} vs {})",
        ablated.stats.verified,
        full.stats.verified
    );
}

#[test]
fn no_deduce_never_returns_a_wrong_program() {
    // Even where the ablation times out, it must not return junk.
    for name in ["head", "tail", "multfirst"] {
        let bench = by_name(name).unwrap();
        match Synthesizer::with_options(opts(20))
            .deduction(false)
            .synthesize(&bench.problem)
        {
            Ok(s) => assert!(
                s.program.satisfies_problem(&bench.problem, 100_000),
                "{name}: ablation returned a non-fitting program"
            ),
            Err(e) => {
                // Timeouts/exhaustion are acceptable for the ablation.
                eprintln!("{name}: ablation gave {e} (acceptable)");
            }
        }
    }
}

#[test]
fn baseline_is_sound_on_first_order_problems() {
    for name in ["head", "tail", "shiftl"] {
        let bench = by_name(name).unwrap();
        match synthesize_baseline(
            &bench.problem,
            &BaselineOptions {
                timeout: Some(Duration::from_secs(20)),
                ..BaselineOptions::default()
            },
        ) {
            Ok(s) => assert!(
                s.program.satisfies_problem(&bench.problem, 100_000),
                "{name}: baseline returned a non-fitting program"
            ),
            Err(e) => eprintln!("{name}: baseline gave {e} (acceptable)"),
        }
    }
}

#[test]
fn deduction_reduces_search_on_fold_problems() {
    // The paper's central ablation claim, in miniature: on a fold-shaped
    // problem the full engine pops far fewer queue items than the
    // no-deduction ablation needs (here the ablation usually cannot solve
    // `sum` at all within the budget).
    let bench = by_name("sum").unwrap();
    let full = Synthesizer::with_options(opts(60))
        .synthesize(&bench.problem)
        .expect("full engine solves sum");
    match Synthesizer::with_options(opts(10))
        .deduction(false)
        .synthesize(&bench.problem)
    {
        Ok(ablated) => assert!(ablated.stats.popped > full.stats.popped),
        Err(_) => {
            // Expected: without deduced examples the fold body is blind.
        }
    }
}
