//! Fault-injection tests (`cargo test --features failpoints`).
//!
//! Every injected fault must surface as a *structured* report — never an
//! abort, never a wedged search — and identical runs must be identical:
//! fault handling may not introduce nondeterminism.

#![cfg(feature = "failpoints")]

use std::time::Duration;

use lambda2::suite::by_name;
use lambda2::synth::failpoints::{self, FailAction, FailGuard};
use lambda2::synth::{
    BudgetExceeded, CollectTracer, SearchOptions, SearchReport, SynthError, Synthesizer, TraceEvent,
};

fn run_with_trace(name: &str, options: &SearchOptions) -> (SearchReport, Vec<TraceEvent>) {
    let bench = by_name(name).expect("benchmark exists");
    let mut tracer = CollectTracer::default();
    let report = Synthesizer::with_options(options.clone())
        .synthesize_report_traced(&bench.problem, &mut tracer);
    (report, tracer.events)
}

fn fault_sites(events: &[TraceEvent]) -> Vec<&'static str> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Fault { site, .. } => Some(*site),
            _ => None,
        })
        .collect()
}

#[test]
fn injected_verifier_panics_are_isolated_and_counted() {
    failpoints::reset();
    let _guard = FailGuard::arm("verify.candidate", FailAction::Panic, 3);
    let (report, events) = run_with_trace("evens", &SearchOptions::default());
    assert_eq!(_guard.hits(), 3, "all three injected panics fired");
    // The search survived every panic and still solved the problem.
    let solved = report.outcome.expect("panics are skipped, not fatal");
    assert!(solved.program.satisfies_problem(
        &by_name("evens").unwrap().problem,
        lambda2::lang::eval::DEFAULT_FUEL
    ));
    assert_eq!(report.stats.faults, 3);
    assert_eq!(
        fault_sites(&events),
        vec!["verify.candidate", "verify.candidate", "verify.candidate"]
    );
}

#[test]
fn injected_deduction_panics_are_isolated_and_counted() {
    failpoints::reset();
    let _guard = FailGuard::arm("deduce.plan", FailAction::Panic, 2);
    let (report, events) = run_with_trace("evens", &SearchOptions::default());
    assert_eq!(_guard.hits(), 2);
    // Deduction faults cost candidate templates, not soundness: if the
    // search still finds a program it must fit the examples; if the
    // faults killed the winning hypothesis, the failure is structured.
    if let Ok(s) = &report.outcome {
        assert!(s.program.satisfies_problem(
            &by_name("evens").unwrap().problem,
            lambda2::lang::eval::DEFAULT_FUEL
        ));
    }
    assert_eq!(report.stats.faults, 2);
    assert_eq!(fault_sites(&events).len(), 2);
}

#[test]
fn injected_fuel_exhaustion_trips_the_fuel_verdict() {
    failpoints::reset();
    // Every verification runs with zero fuel and charges the budget the
    // maximum — the first verified candidate trips the cumulative cap.
    let _guard = FailGuard::arm("verify.candidate", FailAction::ExhaustFuel, u64::MAX);
    let options = SearchOptions {
        max_total_fuel: 1_000,
        ..SearchOptions::default()
    };
    let (report, _) = run_with_trace("evens", &options);
    assert_eq!(report.outcome.unwrap_err(), SynthError::FuelExhausted);
    assert_eq!(report.budget.exceeded, Some(BudgetExceeded::FuelLimit));
    assert!(report.budget.fuel_spent >= 1_000);
}

#[test]
fn injected_mid_phase_deadline_expiry_reports_a_timeout() {
    failpoints::reset();
    // Expire the deadline at the 5th pop of an otherwise-unbounded run.
    let _guard = FailGuard::arm_after("search.pop", FailAction::ExpireDeadline, 4, 1);
    let (report, _) = run_with_trace("evens", &SearchOptions::default());
    assert_eq!(_guard.hits(), 1);
    assert_eq!(report.outcome.unwrap_err(), SynthError::Timeout);
    assert_eq!(report.budget.exceeded, Some(BudgetExceeded::Deadline));
    assert_eq!(report.stats.popped, 5, "expiry landed inside the 5th pop");
}

#[test]
fn forced_store_evictions_do_not_change_the_answer() {
    failpoints::reset();
    let baseline = {
        let (report, _) = run_with_trace("evens", &SearchOptions::default());
        report.outcome.expect("evens solves").program.to_string()
    };
    failpoints::reset();
    let _guard = FailGuard::arm("store.evict", FailAction::EvictStores, u64::MAX);
    let (report, _) = run_with_trace("evens", &SearchOptions::default());
    let forced = report
        .outcome
        .expect("evictions cost recomputation, never answers")
        .program
        .to_string();
    assert!(_guard.hits() > 0, "the eviction site was exercised");
    assert_eq!(forced, baseline);
}

#[test]
fn enumerated_terms_survives_store_evictions() {
    // Regression: `enumerated_terms` used to be recomputed at the end of
    // the search from the *live* store sizes, so every LRU-evicted store
    // silently vanished from the stat. It is now a monotone work counter
    // bumped at insertion time: a run that evicts and rebuilds stores
    // must report at least as many materialized terms as a clean run —
    // the rebuilt terms are real work — and never fewer.
    failpoints::reset();
    let clean = {
        let (report, _) = run_with_trace("evens", &SearchOptions::default());
        report.outcome.expect("evens solves").stats.enumerated_terms
    };
    assert!(clean > 0, "the clean run materializes terms");
    failpoints::reset();
    let _guard = FailGuard::arm("store.evict", FailAction::EvictStores, u64::MAX);
    let (report, _) = run_with_trace("evens", &SearchOptions::default());
    assert!(_guard.hits() > 0, "the eviction site was exercised");
    let evicted = report.outcome.expect("evens still solves");
    assert!(
        evicted.stats.store_evictions > 0,
        "the sweep actually evicted stores"
    );
    assert!(
        evicted.stats.enumerated_terms >= clean,
        "evictions erased work from the counter: {} < {clean}",
        evicted.stats.enumerated_terms
    );
}

#[test]
fn identical_faulty_runs_are_deterministic() {
    let run = || {
        failpoints::reset();
        let _guard = FailGuard::arm("verify.candidate", FailAction::Panic, 2);
        let options = SearchOptions {
            timeout: Some(Duration::from_secs(60)),
            ..SearchOptions::default()
        };
        let (report, events) = run_with_trace("evens", &options);
        let program = report
            .outcome
            .as_ref()
            .map(|s| s.program.to_string())
            .map_err(ToString::to_string);
        (
            program,
            report.stats.popped,
            report.stats.verified,
            report.stats.faults,
            report.budget.pops,
            fault_sites(&events).len(),
        )
    };
    assert_eq!(run(), run(), "fault handling introduced nondeterminism");
}

#[test]
fn disarmed_sites_leak_nothing_into_later_runs() {
    failpoints::reset();
    {
        let _guard = FailGuard::arm("verify.candidate", FailAction::Panic, u64::MAX);
        // Every verification panics, so nothing can ever pass; a pop cap
        // keeps the doomed run short. It fails structurally, not fatally.
        let capped = SearchOptions {
            max_popped: 50,
            ..SearchOptions::default()
        };
        let (report, _) = run_with_trace("ident", &capped);
        assert!(report.outcome.is_err());
        assert!(report.stats.faults > 0);
    }
    // Guard dropped: the same problem now solves cleanly.
    let (report, _) = run_with_trace("ident", &SearchOptions::default());
    let solved = report.outcome.expect("no fault leaked");
    assert_eq!(solved.program.body().to_string(), "l");
    assert_eq!(report.stats.faults, 0);
}
