//! Soundness of the abstract-interpretation refutation pre-pass.
//!
//! The analyzer ([`lambda2::synth::analyze`]) has two tiers with distinct
//! contracts, and both are tested differentially here:
//!
//! 1. **Attribution identity** — the attribution-tier checks are strictly
//!    weaker than the deduction rules they shadow, so synthesis with the
//!    analyzer on (pruning pinned off) returns a byte-identical program at
//!    an identical cost *and identical search counters* to synthesis with
//!    it off, while the *sum* of refutation counters is preserved
//!    (`refuted + static` on == `refuted` off).
//! 2. **Pruning soundness** — the pruning tier (cardinality) refutes
//!    hypotheses deduction keeps, so `enumerated_terms`/`popped` may only
//!    *drop* with it on, while the synthesized program and cost stay
//!    byte-identical: pruning removes only refutable work, never the
//!    minimal solution.
//! 3. **Brute-force refutation witness** — for hypotheses the analyzer
//!    refutes (including pruning-tier ones), no small lambda body
//!    completes them: every candidate body up to a bounded depth fails
//!    some example row.

use std::time::Duration;

use lambda2::suite::catalog;
use lambda2::synth::analyze::{refute_expansion, RefuteDomain, Verdict};
use lambda2::synth::spec::ExampleRow;
use lambda2::synth::{parse_problem, Problem, SearchOptions, Synthesizer};
use lambda2_lang::ast::Comb;
use lambda2_lang::env::Env;
use lambda2_lang::eval::eval_default;
use lambda2_lang::parser::{parse_expr, parse_value};
use lambda2_lang::symbol::Symbol;
use lambda2_lang::value::Value;

fn synthesizer(analysis: bool, secs: u64) -> Synthesizer {
    Synthesizer::with_options(SearchOptions {
        timeout: Some(Duration::from_secs(secs)),
        ..SearchOptions::default()
    })
    .static_analysis(analysis)
    // The attribution differential compares against deduction alone;
    // pruning genuinely changes the frontier and has its own suite below.
    .static_prune(false)
}

/// Synthesizes `problem` with the analyzer on and off and asserts the
/// results are byte-identical; returns the on-run's static refutations.
fn assert_identical_on_off(problem: &Problem, opts: Option<SearchOptions>, secs: u64) -> u64 {
    differential_on_off(problem, opts, secs).unwrap_or_else(|msg| panic!("{msg}"))
}

/// Like [`assert_identical_on_off`], but a *timeout-induced* solvability
/// mismatch is returned as `Err` instead of panicking: the comparison is
/// deterministic except for the wall clock, so a problem solved right at
/// its budget can legitimately flip under load. Callers retry those with
/// a larger budget — a genuine false refutation persists at any budget
/// (the pruned program stays pruned), a timing flake does not.
fn differential_on_off(
    problem: &Problem,
    opts: Option<SearchOptions>,
    secs: u64,
) -> Result<u64, String> {
    let build = |analysis: bool| match &opts {
        Some(o) => Synthesizer::with_options(o.clone())
            .static_analysis(analysis)
            .static_prune(false),
        None => synthesizer(analysis, secs),
    };
    let on = build(true).synthesize(problem);
    let off = build(false).synthesize(problem);
    if on.is_ok() != off.is_ok() {
        let timed_out = [&on, &off]
            .iter()
            .any(|r| matches!(r, Err(lambda2::synth::SynthError::Timeout)));
        if timed_out {
            return Err(format!(
                "{}: solvability flipped at the wall-clock budget (on: {}, off: {})",
                problem.name(),
                on.is_ok(),
                off.is_ok()
            ));
        }
    }
    Ok(match (on, off) {
        (Ok(on), Ok(off)) => {
            assert_eq!(
                on.program.body().to_string(),
                off.program.body().to_string(),
                "{}: analyzer changed the synthesized program",
                problem.name()
            );
            assert_eq!(
                on.cost,
                off.cost,
                "{}: analyzer changed the program cost",
                problem.name()
            );
            // The analyzer only re-attributes refutations; the planned
            // search is identical, so every other counter matches and the
            // refutation *sum* is preserved.
            assert_eq!(
                on.stats.refuted + on.stats.static_refutations,
                off.stats.refuted,
                "{}: refutation sum changed (false or missed refutations)",
                problem.name()
            );
            assert_eq!(off.stats.static_refutations, 0);
            assert_eq!(on.stats.popped, off.stats.popped, "{}", problem.name());
            assert_eq!(
                on.stats.expansions,
                off.stats.expansions,
                "{}",
                problem.name()
            );
            assert_eq!(
                on.stats.ill_typed,
                off.stats.ill_typed,
                "{}",
                problem.name()
            );
            assert_eq!(on.stats.closings, off.stats.closings, "{}", problem.name());
            assert_eq!(on.stats.verified, off.stats.verified, "{}", problem.name());
            on.stats.static_refutations
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{}: analyzer changed the failure mode",
                problem.name()
            );
            0
        }
        (on, off) => panic!(
            "{}: analyzer changed solvability (on: {}, off: {})",
            problem.name(),
            on.is_ok(),
            off.is_ok()
        ),
    })
}

/// Problems cheap enough to double-run (on + off) in a debug build.
const QUICK: &[&str] = &["ident", "incr", "evens", "sum", "reverse"];

/// Quick differential sweep: a fixed set of easy suite problems plus every
/// committed problem file, in debug-friendly time. At least one static
/// refutation must fire across the sweep — the pre-pass must actually
/// participate.
#[test]
fn quick_suite_and_problem_files_are_identical_on_and_off() {
    let mut static_total = 0u64;
    for name in QUICK {
        let bench = lambda2::suite::by_name(name).expect("known benchmark");
        static_total += assert_identical_on_off(&bench.problem, None, 30);
    }
    for problem in committed_problem_files() {
        static_total += assert_identical_on_off(&problem, None, 30);
    }
    assert!(
        static_total > 0,
        "the analyzer refuted nothing across the quick suite"
    );
}

/// Full differential sweep over the whole catalog — hard problems under
/// their tuned options. Slow in debug builds; CI runs it in release with
/// `--include-ignored`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug builds; run in release (cargo test --release -- --include-ignored)"
)]
fn full_suite_is_identical_on_and_off() {
    for bench in catalog() {
        let options = bench.tune(SearchOptions::default());
        // Timeout-marginal problems can flip solvability under load (the
        // wall clock is the only nondeterminism in the comparison); retry
        // those with doubled budgets before calling it a soundness bug.
        let mut outcome = Ok(0);
        for secs in [120u64, 240, 480] {
            let mut options = options.clone();
            options.timeout = Some(Duration::from_secs(secs));
            outcome = differential_on_off(&bench.problem, Some(options), secs);
            if outcome.is_ok() {
                break;
            }
        }
        outcome.unwrap_or_else(|msg| panic!("{msg} — persists across retries"));
    }
}

// --- Pruning-tier differential -----------------------------------------

/// Outcome of one prune-on vs prune-off comparison.
struct PruneDelta {
    pruned: u64,
    enumerated_on: u64,
    enumerated_off: u64,
    popped_on: u64,
    popped_off: u64,
}

/// Synthesizes `problem` with the pruning tier on and off (analyzer on in
/// both arms) and asserts pruning is *conservative*: identical program and
/// cost, search counters only ever drop. Timeout-induced solvability
/// flips are returned as `Err` for the caller to retry, as in
/// [`differential_on_off`].
fn prune_differential(
    problem: &Problem,
    opts: Option<SearchOptions>,
    secs: u64,
) -> Result<PruneDelta, String> {
    let build = |prune: bool| {
        let base = match &opts {
            Some(o) => o.clone(),
            None => SearchOptions {
                timeout: Some(Duration::from_secs(secs)),
                ..SearchOptions::default()
            },
        };
        Synthesizer::with_options(base).static_prune(prune)
    };
    let on = build(true).synthesize(problem);
    let off = build(false).synthesize(problem);
    if on.is_ok() != off.is_ok() {
        let timed_out = [&on, &off]
            .iter()
            .any(|r| matches!(r, Err(lambda2::synth::SynthError::Timeout)));
        if timed_out {
            return Err(format!(
                "{}: solvability flipped at the wall-clock budget (prune on: {}, off: {})",
                problem.name(),
                on.is_ok(),
                off.is_ok()
            ));
        }
    }
    match (on, off) {
        (Ok(on), Ok(off)) => {
            assert_eq!(
                on.program.body().to_string(),
                off.program.body().to_string(),
                "{}: pruning changed the synthesized program",
                problem.name()
            );
            assert_eq!(
                on.cost,
                off.cost,
                "{}: pruning changed the program cost",
                problem.name()
            );
            assert_eq!(
                off.stats.pruned_refutations,
                0,
                "{}: pruned refutations counted with pruning off",
                problem.name()
            );
            assert!(
                on.stats.enumerated_terms <= off.stats.enumerated_terms,
                "{}: pruning *increased* enumerated terms ({} > {})",
                problem.name(),
                on.stats.enumerated_terms,
                off.stats.enumerated_terms
            );
            assert!(
                on.stats.popped <= off.stats.popped,
                "{}: pruning *increased* pops ({} > {})",
                problem.name(),
                on.stats.popped,
                off.stats.popped
            );
            Ok(PruneDelta {
                pruned: on.stats.pruned_refutations,
                enumerated_on: on.stats.enumerated_terms,
                enumerated_off: off.stats.enumerated_terms,
                popped_on: on.stats.popped,
                popped_off: off.stats.popped,
            })
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{}: pruning changed the failure mode",
                problem.name()
            );
            Ok(PruneDelta {
                pruned: 0,
                enumerated_on: 0,
                enumerated_off: 0,
                popped_on: 0,
                popped_off: 0,
            })
        }
        (on, off) => panic!(
            "{}: pruning changed solvability (on: {}, off: {})",
            problem.name(),
            on.is_ok(),
            off.is_ok()
        ),
    }
}

/// Quick pruning differential: the cheap fixed set plus the
/// duplicate-bearing problems built to make cardinality fire. Pruning
/// must actually remove work somewhere (strict enumerated-term drop) and
/// must refute something, while every result stays byte-identical.
#[test]
fn quick_prune_differential_is_conservative_and_productive() {
    let mut pruned_total = 0u64;
    let mut strict_drops = 0usize;
    for name in QUICK.iter().copied().chain(["remove", "headrun", "taken"]) {
        let bench = lambda2::suite::by_name(name).expect("known benchmark");
        let d = prune_differential(&bench.problem, None, 60).unwrap_or_else(|msg| panic!("{msg}"));
        pruned_total += d.pruned;
        if d.enumerated_on < d.enumerated_off {
            strict_drops += 1;
        }
    }
    assert!(
        pruned_total > 0,
        "the pruning tier refuted nothing across the quick sweep"
    );
    assert!(
        strict_drops > 0,
        "pruning never strictly shrank the enumerated-term count"
    );
}

/// The sentinel: `rmall` is a genuine filter whose examples keep
/// all-or-none occurrences of every value, so the cardinality domain must
/// stay silent on the solution hypothesis and the filter program must
/// survive pruning.
#[test]
fn prune_keeps_the_genuine_filter_solution() {
    let bench = lambda2::suite::by_name("rmall").expect("rmall benchmark");
    let result = Synthesizer::with_options(SearchOptions {
        timeout: Some(Duration::from_secs(60)),
        ..SearchOptions::default()
    })
    .synthesize(&bench.problem)
    .expect("rmall is solvable with pruning on");
    assert!(
        result.program.body().to_string().contains("filter"),
        "expected a filter solution, got {}",
        result.program.body()
    );
}

/// Full-catalog pruning differential — every problem, byte-identical
/// programs and costs, counters only drop, and the drop is *strict* in at
/// least 10 problems (the duplicate-bearing family exists to guarantee
/// this). Slow in debug builds; CI runs it in release with
/// `--include-ignored`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug builds; run in release (cargo test --release -- --include-ignored)"
)]
fn full_suite_prune_differential_is_conservative_and_productive() {
    let mut strict_drops = 0usize;
    let mut pruned_total = 0u64;
    for bench in catalog() {
        let options = bench.tune(SearchOptions::default());
        let mut outcome = Err("unreachable".to_owned());
        for secs in [120u64, 240, 480] {
            let mut options = options.clone();
            options.timeout = Some(Duration::from_secs(secs));
            outcome = prune_differential(&bench.problem, Some(options), secs);
            if outcome.is_ok() {
                break;
            }
        }
        let d = outcome.unwrap_or_else(|msg| panic!("{msg} — persists across retries"));
        pruned_total += d.pruned;
        if d.enumerated_on < d.enumerated_off || d.popped_on < d.popped_off {
            strict_drops += 1;
        }
    }
    assert!(pruned_total > 0, "pruning refuted nothing catalog-wide");
    assert!(
        strict_drops >= 10,
        "pruning strictly shrank the search in only {strict_drops} problems (need 10)"
    );
}

/// The `check-invariants` re-prove hook: under the feature, every
/// pruning-tier refutation is re-proved *at the refutation site* by the
/// bounded brute-force oracle (not by deduction, which is strictly weaker
/// there). This test makes the hook fire on a real search: the examples
/// carry a partially-kept duplicate, so the filter hypothesis over `l` is
/// cardinality-pruned — an unsound verdict would panic inside the hook.
#[cfg(feature = "check-invariants")]
#[test]
fn pruned_refutations_reprove_under_check_invariants() {
    let problem = Problem::builder("dup_tail")
        .param("l", "[int]")
        .returns("[int]")
        .example(&["[7 4 7]"], "[4 7]")
        .example(&["[5]"], "[]")
        .example(&["[2 9 4]"], "[9 4]")
        .build()
        .unwrap();
    let result = Synthesizer::with_options(SearchOptions {
        timeout: Some(Duration::from_secs(60)),
        ..SearchOptions::default()
    })
    .synthesize(&problem)
    .expect("dup_tail is solvable (cdr)");
    assert!(
        result.stats.pruned_refutations > 0,
        "expected the cardinality domain to prune the filter hypothesis"
    );
}

fn committed_problem_files() -> Vec<Problem> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/problems");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("problems/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "l2") {
            let src = std::fs::read_to_string(&path).expect("readable problem file");
            out.push(parse_problem(&src).expect("committed problem files parse"));
        }
    }
    assert!(out.len() >= 2, "expected committed problem files in {dir}");
    out
}

// --- Brute-force refutation witnesses ----------------------------------

/// All integer-valued term strings over `vars` up to `depth` operator
/// applications (arithmetic fragment).
fn int_terms(vars: &[&str], depth: usize) -> Vec<String> {
    let mut terms: Vec<String> = vars.iter().map(|v| (*v).to_owned()).collect();
    terms.extend(["0", "1", "2"].map(str::to_owned));
    for _ in 0..depth {
        let prev = terms.clone();
        for op in ["+", "-", "*"] {
            for a in &prev {
                for b in &prev {
                    terms.push(format!("({op} {a} {b})"));
                }
            }
        }
        terms.sort();
        terms.dedup();
    }
    terms
}

/// All boolean-valued term strings comparing `int_terms` at depth 1.
fn bool_terms(vars: &[&str]) -> Vec<String> {
    let ints = int_terms(vars, 1);
    let mut out = Vec::new();
    for op in ["<", "<=", ">", ">=", "=", "!="] {
        for a in &ints {
            for b in &ints {
                out.push(format!("({op} {a} {b})"));
            }
        }
    }
    out
}

/// Asserts that the analyzer refutes `comb` on `rows`/`coll`/`init`, and
/// that the refutation is *true*: no candidate body from `bodies`
/// completes the hypothesis `comb (λ binders. body) [init] coll` on every
/// row.
fn assert_refutation_has_no_completion(
    comb: Comb,
    pairs: &[(&str, &str)],
    init: Option<&str>,
    binders: &[&str],
    bodies: &[String],
) {
    let l = Symbol::intern("l");
    let mut rows = Vec::new();
    let mut coll = Vec::new();
    for (i, o) in pairs {
        let iv = parse_value(i).unwrap();
        rows.push(ExampleRow::new(
            Env::empty().bind(l, iv.clone()),
            parse_value(o).unwrap(),
        ));
        coll.push(iv);
    }
    let init_vals: Option<Vec<Value>> = init.map(|e| vec![parse_value(e).unwrap(); rows.len()]);
    let verdict = refute_expansion(comb, &rows, &coll, init_vals.as_deref());
    assert!(
        matches!(verdict, Verdict::Refuted(_)),
        "analyzer should refute {comb:?} on {pairs:?}"
    );

    let binder_list = binders.join(" ");
    let mut checked = 0usize;
    for body in bodies {
        let program = match init {
            Some(e) => format!("({} (lambda ({binder_list}) {body}) {e} l)", comb.name()),
            None => format!("({} (lambda ({binder_list}) {body}) l)", comb.name()),
        };
        let expr = parse_expr(&program).unwrap();
        let fits = rows
            .iter()
            .all(|row| eval_default(&expr, &row.env).is_ok_and(|out| out == row.output));
        assert!(
            !fits,
            "analyzer-refuted hypothesis completed by `{program}` — false refutation"
        );
        checked += 1;
    }
    assert!(
        checked > 100,
        "brute-force sweep too small ({checked} bodies)"
    );
}

#[test]
fn refuted_map_has_no_small_completion() {
    // map preserves length; [1 2] -> [2] cannot be a map.
    assert_refutation_has_no_completion(
        Comb::Map,
        &[("[1 2]", "[2]")],
        None,
        &["x"],
        &int_terms(&["x"], 2),
    );
}

#[test]
fn refuted_filter_has_no_small_completion() {
    // filter selects a subsequence; 3 never occurs in [1 2].
    assert_refutation_has_no_completion(
        Comb::Filter,
        &[("[1 2]", "[3]")],
        None,
        &["x"],
        &bool_terms(&["x"]),
    );
}

#[test]
fn refuted_foldl_has_no_small_completion() {
    // foldl over [] returns the init unchanged; 7 != 0 for any body.
    assert_refutation_has_no_completion(
        Comb::Foldl,
        &[("[]", "0"), ("[1]", "1")],
        Some("7"),
        &["a", "x"],
        &int_terms(&["a", "x"], 2),
    );
}

#[test]
fn refuted_mapt_has_no_small_completion() {
    // mapt preserves tree shape; {1 {2}} -> {1} cannot be a mapt.
    assert_refutation_has_no_completion(
        Comb::Mapt,
        &[("{1 {2}}", "{1}")],
        None,
        &["x"],
        &int_terms(&["x"], 2),
    );
}

#[test]
fn refuted_foldt_has_no_small_completion() {
    // foldt over {} returns the init unchanged; 5 != 9 for any body.
    assert_refutation_has_no_completion(
        Comb::Foldt,
        &[("{}", "9"), ("{1}", "1")],
        Some("5"),
        &["v", "rs"],
        &int_terms(&["v"], 2),
    );
}

/// Asserts the analyzer's verdict on a filter hypothesis is a refutation
/// by exactly the cardinality domain — i.e. deduction's coarser domains
/// (length, provenance, order) all pass, so the refutation is pruning-tier
/// work the deduction rules could not have done.
fn assert_cardinality_verdict(pairs: &[(&str, &str)]) {
    let l = Symbol::intern("l");
    let mut rows = Vec::new();
    let mut coll = Vec::new();
    for (i, o) in pairs {
        let iv = parse_value(i).unwrap();
        rows.push(ExampleRow::new(
            Env::empty().bind(l, iv.clone()),
            parse_value(o).unwrap(),
        ));
        coll.push(iv);
    }
    assert_eq!(
        refute_expansion(Comb::Filter, &rows, &coll, None),
        Verdict::Refuted(RefuteDomain::Cardinality),
        "{pairs:?}"
    );
}

#[test]
fn cardinality_refuted_filter_has_no_small_completion() {
    // [5 7 5] -> [5] keeps one of two 5s: a predicate gives equal
    // elements the same verdict, so no filter body exists — yet the
    // output is a subsequence drawn from the input multiset, so the
    // attribution-tier domains (and deduction) all pass.
    assert_cardinality_verdict(&[("[5 7 5]", "[5]")]);
    assert_refutation_has_no_completion(
        Comb::Filter,
        &[("[5 7 5]", "[5]")],
        None,
        &["x"],
        &bool_terms(&["x"]),
    );
}

#[test]
fn cardinality_refuted_multirow_filter_has_no_small_completion() {
    // [8 3 8] -> [8 3] keeps one of two 8s; the clean second row must not
    // mask the refutation.
    assert_cardinality_verdict(&[("[8 3 8]", "[8 3]"), ("[1 2]", "[1 2]")]);
    assert_refutation_has_no_completion(
        Comb::Filter,
        &[("[8 3 8]", "[8 3]"), ("[1 2]", "[1 2]")],
        None,
        &["x"],
        &bool_terms(&["x"]),
    );
}
