//! Cross-crate property tests: parser/printer inversion, evaluator laws,
//! enumerator completeness, and cost-model sanity.
//!
//! Originally written against `proptest`; the build environment has no
//! registry access, so the properties now run over seeded random case
//! generators backed by the vendored `rand` shim. Same invariants, fixed
//! seeds, deterministic failures.

use lambda2::lang::ast::{Comb, Expr, Op};
use lambda2::lang::env::Env;
use lambda2::lang::eval::{eval, eval_default};
use lambda2::lang::parser::{parse_expr, parse_value};
use lambda2::lang::symbol::Symbol;
use lambda2::lang::ty::Type;
use lambda2::lang::value::Value;
use lambda2::synth::enumerate::{EnumLimits, TermStore};
use lambda2::synth::{CostModel, ExampleRow, Library, Spec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Random AST generation
// ---------------------------------------------------------------------------

fn random_value(depth: u32, rng: &mut StdRng) -> Value {
    let leaf = depth == 0 || rng.gen_range(0..3u32) == 0;
    if leaf {
        if rng.gen_bool(0.5) {
            Value::Int(rng.gen_range(-20i64..20))
        } else {
            Value::Bool(rng.gen_bool(0.5))
        }
    } else if rng.gen_bool(0.5) {
        let n = rng.gen_range(0usize..4);
        Value::list((0..n).map(|_| random_value(depth - 1, rng)).collect())
    } else {
        let v = random_value(depth - 1, rng);
        let n = rng.gen_range(0usize..3);
        let children = (0..n)
            .map(|_| lambda2::lang::value::Tree::node(Value::Int(rng.gen_range(-9i64..9)), vec![]))
            .collect();
        Value::Tree(lambda2::lang::value::Tree::node(v, children))
    }
}

/// Random well-formed expressions over variables `x`, `y`, `l`.
fn random_expr(depth: u32, rng: &mut StdRng) -> Expr {
    const UNARY: &[Op] = &[Op::Not, Op::Car, Op::Cdr, Op::IsEmpty];
    const BINARY: &[Op] = &[Op::Add, Op::Sub, Op::Mul, Op::Lt, Op::Eq, Op::Cons, Op::Cat];
    let leaf = depth == 0 || rng.gen_range(0..4u32) == 0;
    if leaf {
        match rng.gen_range(0..6u32) {
            0 => Expr::int(rng.gen_range(-20i64..20)),
            1 => Expr::bool(rng.gen_bool(0.5)),
            2 => Expr::var("x"),
            3 => Expr::var("y"),
            4 => Expr::var("l"),
            _ => Expr::Lit(Value::nil()),
        }
    } else {
        match rng.gen_range(0..5u32) {
            0 => {
                let op = UNARY[rng.gen_range(0..UNARY.len())];
                Expr::Op(op, [random_expr(depth - 1, rng)].into())
            }
            1 => {
                let op = BINARY[rng.gen_range(0..BINARY.len())];
                Expr::Op(
                    op,
                    [random_expr(depth - 1, rng), random_expr(depth - 1, rng)].into(),
                )
            }
            2 => Expr::if_(
                random_expr(depth - 1, rng),
                random_expr(depth - 1, rng),
                random_expr(depth - 1, rng),
            ),
            3 => Expr::lambda(vec![Symbol::intern("x")], random_expr(depth - 1, rng)),
            _ => Expr::comb(
                Comb::Map,
                vec![
                    Expr::lambda(vec![Symbol::intern("x")], random_expr(depth - 1, rng)),
                    random_expr(depth - 1, rng),
                ],
            ),
        }
    }
}

fn random_int_list(len_range: std::ops::Range<usize>, rng: &mut StdRng) -> Vec<i64> {
    let n = rng.gen_range(len_range);
    (0..n).map(|_| rng.gen_range(-9i64..9)).collect()
}

/// `parse ∘ pretty = id` on random expressions.
#[test]
fn parser_inverts_pretty_printer() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..128 {
        let e = random_expr(4, &mut rng);
        let shown = e.to_string();
        let reparsed = parse_expr(&shown).expect("printed expressions parse");
        assert_eq!(reparsed, e, "{shown}");
        // And printing is a fixpoint.
        assert_eq!(reparsed.to_string(), shown);
    }
}

/// Value display also round-trips.
#[test]
fn value_display_round_trips() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..128 {
        let v = random_value(3, &mut rng);
        let shown = v.to_string();
        let reparsed = parse_value(&shown).expect("printed values parse");
        assert_eq!(reparsed, v, "{shown}");
    }
}

/// Evaluation is deterministic and fuel-monotone: succeeding with fuel
/// F succeeds identically with any fuel >= F.
#[test]
fn evaluation_is_deterministic_and_fuel_monotone() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..128 {
        let e = random_expr(4, &mut rng);
        let env = Env::empty()
            .bind(Symbol::intern("x"), Value::Int(3))
            .bind(Symbol::intern("y"), Value::Int(-2))
            .bind(Symbol::intern("l"), parse_value("[4 1 5]").unwrap());
        let r1 = eval_default(&e, &env);
        let r2 = eval_default(&e, &env);
        // Closures compare by identity, so determinism is only observable
        // on first-order results.
        if matches!(&r1, Ok(v) if !v.is_first_order()) {
            continue;
        }
        assert_eq!(r1, r2, "{e}");
        if r1.is_ok() {
            let mut big = 10 * lambda2::lang::eval::DEFAULT_FUEL;
            assert_eq!(eval(&e, &env, &mut big), r1, "{e}");
        }
    }
}

/// map fusion: map f (map g l) == map (f ∘ g) l.
#[test]
fn map_fusion_law() {
    let mut rng = StdRng::seed_from_u64(0xF0);
    let nested = parse_expr("(map (lambda (x) (* x x)) (map (lambda (x) (+ x 1)) l))").unwrap();
    let fused = parse_expr("(map (lambda (x) (* (+ x 1) (+ x 1))) l)").unwrap();
    for _ in 0..64 {
        let l = random_int_list(0..6, &mut rng);
        let env = Env::empty().bind(
            Symbol::intern("l"),
            l.iter().copied().map(Value::Int).collect::<Value>(),
        );
        assert_eq!(
            eval_default(&nested, &env).unwrap(),
            eval_default(&fused, &env).unwrap(),
            "on {l:?}"
        );
    }
}

/// foldr cons [] is the identity; foldl with swapped cons reverses.
#[test]
fn fold_identities() {
    let mut rng = StdRng::seed_from_u64(0xF1);
    let id = parse_expr("(foldr (lambda (x a) (cons x a)) [] l)").unwrap();
    let rev = parse_expr("(foldl (lambda (a x) (cons x a)) [] l)").unwrap();
    for _ in 0..64 {
        let l = random_int_list(0..6, &mut rng);
        let lv: Value = l.iter().copied().map(Value::Int).collect();
        let env = Env::empty().bind(Symbol::intern("l"), lv.clone());
        assert_eq!(eval_default(&id, &env).unwrap(), lv);

        let mut reversed = l.clone();
        reversed.reverse();
        assert_eq!(
            eval_default(&rev, &env).unwrap(),
            reversed.into_iter().map(Value::Int).collect::<Value>()
        );
    }
}

/// recl agrees with foldr when it ignores the tail argument.
#[test]
fn recl_subsumes_foldr() {
    let mut rng = StdRng::seed_from_u64(0xF2);
    let via_recl = parse_expr("(recl (lambda (x xs r) (cons (+ x 1) r)) [] l)").unwrap();
    let via_foldr = parse_expr("(foldr (lambda (x a) (cons (+ x 1) a)) [] l)").unwrap();
    for _ in 0..64 {
        let l = random_int_list(0..6, &mut rng);
        let env = Env::empty().bind(
            Symbol::intern("l"),
            l.iter().copied().map(Value::Int).collect::<Value>(),
        );
        assert_eq!(
            eval_default(&via_recl, &env).unwrap(),
            eval_default(&via_foldr, &env).unwrap(),
            "on {l:?}"
        );
    }
}

/// Cost model: positive, and compositional over `if`.
#[test]
fn cost_model_sanity() {
    let mut rng = StdRng::seed_from_u64(0xF3);
    let m = CostModel::default();
    for _ in 0..128 {
        let e = random_expr(4, &mut rng);
        let c = m.cost(&e);
        assert!(c >= 1);
        let wrapped = Expr::if_(Expr::bool(true), e.clone(), e);
        assert_eq!(m.cost(&wrapped), 1 + 1 + 2 * c);
    }
}

// ---------------------------------------------------------------------------
// Enumerator completeness (bounded)
// ---------------------------------------------------------------------------

/// If *some* combinator-free term of cost <= 5 over `l` produces the
/// observed outputs, the enumerator's closings find a term doing the
/// same, at no greater cost. We sample the witness from a fixed pool
/// and derive the spec by evaluating it.
#[test]
fn enumerator_finds_an_equivalent_closing() {
    let pool = [
        ("l", 1u32),
        ("(car l)", 2),
        ("(cdr l)", 2),
        ("(cons 0 l)", 4),
        ("(car (cdr (cons 1 l)))", 5),
        ("(cat l l)", 3),
    ];
    let mut rng = StdRng::seed_from_u64(0xE1);
    for case in 0..48 {
        let witness_idx = rng.gen_range(0..pool.len());
        let n_lists = rng.gen_range(1usize..4);
        // Non-empty lists: car/cdr safe.
        let lists: Vec<Vec<i64>> = (0..n_lists)
            .map(|_| random_int_list(1..5, &mut rng))
            .collect();

        let (witness, wcost) = pool[witness_idx];
        let wexpr = parse_expr(witness).unwrap();
        let l = Symbol::intern("l");

        let rows: Vec<ExampleRow> = lists
            .iter()
            .map(|xs| {
                let lv: Value = xs.iter().copied().map(Value::Int).collect();
                let env = Env::empty().bind(l, lv);
                let out = eval_default(&wexpr, &env).expect("witness evaluates");
                ExampleRow::new(env, out)
            })
            .collect();
        let spec = Spec::new(rows).expect("consistent by construction");
        let ret_ty = match witness_idx {
            1 | 4 => Type::Int,
            _ => Type::list(Type::Int),
        };

        let mut store = TermStore::new(
            vec![(l, Type::list(Type::Int))],
            &spec,
            EnumLimits::default(),
        );
        let lib = Library::default();
        let mut found_at = None;
        for k in 1..=wcost {
            store.ensure(k, &lib);
            if store.closings(k, &ret_ty, &spec).next().is_some() {
                found_at = Some(k);
                break;
            }
        }
        let found_at =
            found_at.unwrap_or_else(|| panic!("case {case}: no closing within cost of {witness}"));
        assert!(found_at <= wcost, "case {case}: {witness}");
    }
}
