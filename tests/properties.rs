//! Cross-crate property tests: parser/printer inversion, evaluator laws,
//! enumerator completeness, and cost-model sanity.

use lambda2::lang::ast::{Comb, Expr, Op};
use lambda2::lang::env::Env;
use lambda2::lang::eval::{eval, eval_default};
use lambda2::lang::parser::{parse_expr, parse_value};
use lambda2::lang::symbol::Symbol;
use lambda2::lang::ty::Type;
use lambda2::lang::value::Value;
use lambda2::synth::enumerate::{EnumLimits, TermStore};
use lambda2::synth::{CostModel, ExampleRow, Library, Spec};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Random AST generation
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::list),
            (inner, proptest::collection::vec(arb_tree_of_ints(), 0..3))
                .prop_map(|(v, cs)| Value::Tree(lambda2::lang::value::Tree::node(v, cs))),
        ]
    })
}

fn arb_tree_of_ints() -> impl Strategy<Value = lambda2::lang::value::Tree> {
    (-9i64..9)
        .prop_map(|n| lambda2::lang::value::Tree::node(Value::Int(n), vec![]))
}

/// Random well-formed expressions over variables `x`, `y`, `l`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::int),
        any::<bool>().prop_map(Expr::bool),
        Just(Expr::var("x")),
        Just(Expr::var("y")),
        Just(Expr::var("l")),
        Just(Expr::Lit(Value::nil())),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        let unary = prop_oneof![
            Just(Op::Not),
            Just(Op::Car),
            Just(Op::Cdr),
            Just(Op::IsEmpty),
        ];
        let binary = prop_oneof![
            Just(Op::Add),
            Just(Op::Sub),
            Just(Op::Mul),
            Just(Op::Lt),
            Just(Op::Eq),
            Just(Op::Cons),
            Just(Op::Cat),
        ];
        prop_oneof![
            (unary, inner.clone()).prop_map(|(op, a)| Expr::Op(op, [a].into())),
            (binary, inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Expr::Op(op, [a, b].into())),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::if_(c, t, e)),
            inner.clone().prop_map(|b| {
                Expr::lambda(vec![Symbol::intern("x")], b)
            }),
            (inner.clone(), inner.clone()).prop_map(|(f, l)| {
                Expr::comb(Comb::Map, vec![Expr::lambda(vec![Symbol::intern("x")], f), l])
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse ∘ pretty = id` on random expressions.
    #[test]
    fn parser_inverts_pretty_printer(e in arb_expr()) {
        let shown = e.to_string();
        let reparsed = parse_expr(&shown).expect("printed expressions parse");
        prop_assert_eq!(&reparsed, &e, "{}", shown);
        // And printing is a fixpoint.
        prop_assert_eq!(reparsed.to_string(), shown);
    }

    /// Value display also round-trips.
    #[test]
    fn value_display_round_trips(v in arb_value()) {
        let shown = v.to_string();
        let reparsed = parse_value(&shown).expect("printed values parse");
        prop_assert_eq!(reparsed, v);
    }

    /// Evaluation is deterministic and fuel-monotone: succeeding with fuel
    /// F succeeds identically with any fuel >= F.
    #[test]
    fn evaluation_is_deterministic_and_fuel_monotone(e in arb_expr()) {
        let env = Env::empty()
            .bind(Symbol::intern("x"), Value::Int(3))
            .bind(Symbol::intern("y"), Value::Int(-2))
            .bind(Symbol::intern("l"), parse_value("[4 1 5]").unwrap());
        let r1 = eval_default(&e, &env);
        let r2 = eval_default(&e, &env);
        // Closures compare by identity, so determinism is only observable
        // on first-order results.
        if matches!(&r1, Ok(v) if !v.is_first_order()) {
            return Ok(());
        }
        prop_assert_eq!(&r1, &r2);
        if r1.is_ok() {
            let mut big = 10 * lambda2::lang::eval::DEFAULT_FUEL;
            prop_assert_eq!(eval(&e, &env, &mut big), r1);
        }
    }

    /// map fusion: map f (map g l) == map (f ∘ g) l.
    #[test]
    fn map_fusion_law(l in proptest::collection::vec(-9i64..9, 0..6)) {
        let env = Env::empty().bind(
            Symbol::intern("l"),
            l.iter().copied().map(Value::Int).collect::<Value>(),
        );
        let nested = parse_expr(
            "(map (lambda (x) (* x x)) (map (lambda (x) (+ x 1)) l))",
        ).unwrap();
        let fused = parse_expr(
            "(map (lambda (x) (* (+ x 1) (+ x 1))) l)",
        ).unwrap();
        prop_assert_eq!(eval_default(&nested, &env).unwrap(),
                        eval_default(&fused, &env).unwrap());
    }

    /// foldr cons [] is the identity; foldl with swapped cons reverses.
    #[test]
    fn fold_identities(l in proptest::collection::vec(-9i64..9, 0..6)) {
        let lv: Value = l.iter().copied().map(Value::Int).collect();
        let env = Env::empty().bind(Symbol::intern("l"), lv.clone());
        let id = parse_expr("(foldr (lambda (x a) (cons x a)) [] l)").unwrap();
        prop_assert_eq!(eval_default(&id, &env).unwrap(), lv);

        let rev = parse_expr("(foldl (lambda (a x) (cons x a)) [] l)").unwrap();
        let mut reversed = l.clone();
        reversed.reverse();
        prop_assert_eq!(
            eval_default(&rev, &env).unwrap(),
            reversed.into_iter().map(Value::Int).collect::<Value>()
        );
    }

    /// recl agrees with foldr when it ignores the tail argument.
    #[test]
    fn recl_subsumes_foldr(l in proptest::collection::vec(-9i64..9, 0..6)) {
        let env = Env::empty().bind(
            Symbol::intern("l"),
            l.iter().copied().map(Value::Int).collect::<Value>(),
        );
        let via_recl = parse_expr("(recl (lambda (x xs r) (cons (+ x 1) r)) [] l)").unwrap();
        let via_foldr = parse_expr("(foldr (lambda (x a) (cons (+ x 1) a)) [] l)").unwrap();
        prop_assert_eq!(
            eval_default(&via_recl, &env).unwrap(),
            eval_default(&via_foldr, &env).unwrap()
        );
    }

    /// Cost model: positive, and compositional over `if`.
    #[test]
    fn cost_model_sanity(e in arb_expr()) {
        let m = CostModel::default();
        let c = m.cost(&e);
        prop_assert!(c >= 1);
        let wrapped = Expr::if_(Expr::bool(true), e.clone(), e);
        prop_assert_eq!(m.cost(&wrapped), 1 + 1 + 2 * c);
    }
}

// ---------------------------------------------------------------------------
// Enumerator completeness (bounded)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// If *some* combinator-free term of cost <= 5 over `l` produces the
    /// observed outputs, the enumerator's closings find a term doing the
    /// same, at no greater cost. We sample the witness from a fixed pool
    /// and derive the spec by evaluating it.
    #[test]
    fn enumerator_finds_an_equivalent_closing(
        witness_idx in 0usize..6,
        lists in proptest::collection::vec(
            proptest::collection::vec(-9i64..9, 1..5), // non-empty: car/cdr safe
            1..4,
        ),
    ) {
        let pool = [
            ("l", 1u32),
            ("(car l)", 2),
            ("(cdr l)", 2),
            ("(cons 0 l)", 4),
            ("(car (cdr (cons 1 l)))", 5),
            ("(cat l l)", 3),
        ];
        let (witness, wcost) = pool[witness_idx];
        let wexpr = parse_expr(witness).unwrap();
        let l = Symbol::intern("l");

        let rows: Vec<ExampleRow> = lists
            .iter()
            .map(|xs| {
                let lv: Value = xs.iter().copied().map(Value::Int).collect();
                let env = Env::empty().bind(l, lv);
                let out = eval_default(&wexpr, &env).expect("witness evaluates");
                ExampleRow::new(env, out)
            })
            .collect();
        let spec = Spec::new(rows).expect("consistent by construction");
        let ret_ty = match witness_idx {
            1 | 4 => Type::Int,
            _ => Type::list(Type::Int),
        };

        let mut store = TermStore::new(
            vec![(l, Type::list(Type::Int))],
            &spec,
            EnumLimits::default(),
        );
        let lib = Library::default();
        let mut found_at = None;
        for k in 1..=wcost {
            store.ensure(k, &lib);
            if store.closings(k, &ret_ty, &spec).next().is_some() {
                found_at = Some(k);
                break;
            }
        }
        let found_at = found_at.expect("a closing must exist within the witness's cost");
        prop_assert!(found_at <= wcost);
    }
}
