//! Round-trip synthesis: the paper's own methodology, automated.
//!
//! For each target program drawn from a pool of ground-truth programs:
//! generate chain-structured examples *by running the target*, hand only
//! the examples to the synthesizer, and check that the synthesized
//! program agrees with the target on held-out inputs. This exercises the
//! whole pipeline — deduction, enumeration, search, verification — against
//! targets the suite does not contain verbatim.

use std::time::Duration;

use lambda2::lang::eval::DEFAULT_FUEL;
use lambda2::lang::parser::{parse_expr, parse_type};
use lambda2::lang::symbol::Symbol;
use lambda2::lang::value::Value;
use lambda2::suite::generators::random_list;
use lambda2::synth::{Problem, Program, SearchOptions, Synthesizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random list over a *signed* range — training data must exercise both
/// sides of predicates like `x > 0` or a target is underdetermined.
fn signed_list(len: usize, rng: &mut StdRng) -> Vec<Value> {
    (0..len)
        .map(|_| Value::Int(rng.gen_range(-5..10)))
        .collect()
}

/// Ground-truth targets: (name, parameter type, body). All single-list
/// programs so the chain-example generator below applies.
const TARGETS: &[(&str, &str, &str)] = &[
    (
        "rt_sum_sq",
        "[int]",
        "(foldl (lambda (a x) (+ a (* x x))) 0 l)",
    ),
    (
        "rt_count_pos",
        "[int]",
        "(foldl (lambda (a x) (if (< 0 x) (+ a 1) a)) 0 l)",
    ),
    (
        "rt_map_double_incr",
        "[int]",
        "(map (lambda (x) (+ (+ x x) 1)) l)",
    ),
    ("rt_keep_big", "[int]", "(filter (lambda (x) (< 4 x)) l)"),
    ("rt_snoc_zero", "[int]", "(cat l (cons 0 []))"),
];

fn roundtrip(name: &str, param_ty: &str, body: &str, seed: u64) {
    let target = Program::new(
        vec![(Symbol::intern("l"), parse_type(param_ty).unwrap())],
        parse_expr(body).unwrap(),
    );

    // Chain-structured training inputs: all prefixes of a *fixed,
    // value-diverse* base (a boundary value for every target's predicate:
    // 1 kills division tricks, 0 and negatives kill length-for-count,
    // 4/5 straddle the `> 4` threshold), plus two random signed lists.
    // A minimal-cost synthesizer will exploit any slack the data leaves.
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<Value> = [1, -2, 5, 0, 9, 4, 2, 6].map(Value::Int).to_vec();
    let mut builder = Problem::builder(name).param("l", param_ty).returns(
        &target
            .infer_type()
            .expect("targets are well-typed")
            .to_string(),
    );
    let mut inputs: Vec<Value> = (0..=base.len())
        .map(|n| Value::list(base[..n].to_vec()))
        .collect();
    // A second chain with a different head: prefix chains share their
    // first element, which otherwise licenses `(car l)`-flavored junk.
    let base2: Vec<Value> = [-3, 7, 1, 4].map(Value::Int).to_vec();
    inputs.extend((1..=base2.len()).map(|n| Value::list(base2[..n].to_vec())));
    inputs.push(Value::list(signed_list(4, &mut rng)));
    inputs.push(Value::list(signed_list(3, &mut rng)));
    for input in inputs {
        let output = target
            .apply_with_fuel(std::slice::from_ref(&input), DEFAULT_FUEL)
            .expect("target evaluates");
        builder = builder.example_values(vec![input], output);
    }
    let problem = builder.build().expect("well-formed generated problem");

    let options = SearchOptions {
        timeout: Some(Duration::from_secs(60)),
        ..SearchOptions::default()
    };
    let result = Synthesizer::with_options(options)
        .synthesize(&problem)
        .unwrap_or_else(|e| panic!("{name}: failed to synthesize: {e}"));

    // Behavioral agreement on held-out random inputs. The synthesized
    // program may be cheaper than the target but must compute the same
    // function wherever the target is defined.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
    for len in 0..8 {
        let input = Value::list(signed_list(len, &mut rng));
        let _ = random_list; // generator retained for symmetric API use
        let want = target.apply_with_fuel(std::slice::from_ref(&input), DEFAULT_FUEL);
        let got = result
            .program
            .apply_with_fuel(std::slice::from_ref(&input), DEFAULT_FUEL);
        assert_eq!(
            got.as_ref().ok(),
            want.as_ref().ok(),
            "{name}: disagreement on {input}: target {want:?}, synthesized {got:?} \
             (program: {})",
            result.program
        );
    }
}

#[test]
fn roundtrip_sum_of_squares() {
    let (n, t, b) = TARGETS[0];
    roundtrip(n, t, b, 101);
}

#[test]
fn roundtrip_count_positives() {
    let (n, t, b) = TARGETS[1];
    roundtrip(n, t, b, 202);
}

#[test]
fn roundtrip_affine_map() {
    let (n, t, b) = TARGETS[2];
    roundtrip(n, t, b, 303);
}

#[test]
fn roundtrip_threshold_filter() {
    let (n, t, b) = TARGETS[3];
    roundtrip(n, t, b, 404);
}

#[test]
fn roundtrip_snoc() {
    let (n, t, b) = TARGETS[4];
    roundtrip(n, t, b, 505);
}
