//! Determinism suite for the parallel drivers (`lambda2::synth::par`).
//!
//! Parallelism may change *when* answers arrive, never *what* they are:
//! `--jobs N` batches and `--portfolio` racing must report byte-identical
//! programs at identical costs with identical (permutation-independent)
//! counters, and a cancelled or crashed loser must never corrupt a
//! winner.

use std::time::Duration;

use lambda2::suite::by_name;
use lambda2::synth::par::{
    portfolio_report, portfolio_report_traced, synthesize_batch, ParEngine, ParTask,
};
use lambda2::synth::{
    CollectTracer, Problem, Rung, SearchOptions, Stats, SynthError, Synthesizer, TraceEvent,
};

/// Non-hard suite problems that solve in well under a second each.
const FAST: &[&str] = &[
    "ident",
    "head",
    "tail",
    "last",
    "incr",
    "shiftl",
    "multfirst",
];

/// The options the sequential path would use for a suite problem.
fn options_for(name: &str) -> SearchOptions {
    let bench = by_name(name).expect("suite problem");
    let mut options = bench.tune(SearchOptions::default());
    options.timeout = Some(Duration::from_secs(60));
    options
}

fn task_for(name: &str) -> ParTask {
    let bench = by_name(name).expect("suite problem");
    ParTask {
        spec: bench.problem.clone(),
        options: options_for(name),
        engine: ParEngine::Search,
        portfolio: false,
        collect_trace: false,
    }
}

/// The deterministic counters (phase *timings* are excluded: wall time is
/// the one thing parallelism is allowed to change).
fn counters(stats: &Stats) -> (u64, u64, u64, u64, u64, u64) {
    (
        stats.popped,
        stats.expansions,
        stats.refuted,
        stats.closings,
        stats.verified,
        stats.enumerated_terms,
    )
}

#[test]
fn parallel_batch_matches_sequential_runs_exactly() {
    let tasks: Vec<ParTask> = FAST.iter().map(|n| task_for(n)).collect();
    let outcomes = synthesize_batch(tasks, 4);
    assert_eq!(outcomes.len(), FAST.len());
    for (name, outcome) in FAST.iter().zip(&outcomes) {
        let sequential = Synthesizer::with_options(options_for(name))
            .synthesize_report(&by_name(name).unwrap().problem);
        let seq = sequential.outcome.expect("fast problem solves");
        let report = outcome.result.as_ref().expect("no panic");
        let par = report.outcome.as_ref().expect("fast problem solves");
        assert_eq!(outcome.name, *name);
        assert_eq!(par.program.to_string(), seq.program.to_string(), "{name}");
        assert_eq!(par.cost, seq.cost, "{name}");
        assert_eq!(
            counters(&report.stats),
            counters(&sequential.stats),
            "{name}"
        );
    }
}

#[test]
fn merged_totals_are_permutation_independent() {
    let forward: Vec<ParTask> = FAST.iter().map(|n| task_for(n)).collect();
    let reversed: Vec<ParTask> = FAST.iter().rev().map(|n| task_for(n)).collect();
    let total = |outcomes: &[lambda2::synth::ParOutcome]| {
        let mut sum = Stats::default();
        for o in outcomes {
            sum.merge(&o.result.as_ref().expect("no panic").stats);
        }
        counters(&sum)
    };
    let jobs1 = total(&synthesize_batch(forward.clone(), 1));
    let jobs4 = total(&synthesize_batch(forward, 4));
    let jobs4_rev = total(&synthesize_batch(reversed, 4));
    assert_eq!(jobs1, jobs4, "worker count changed the merged counters");
    assert_eq!(
        jobs4, jobs4_rev,
        "submission order changed the merged counters"
    );
}

#[test]
fn portfolio_matches_the_sequential_ladder_when_the_full_rung_wins() {
    for name in ["evens", "shiftl"] {
        let problem = &by_name(name).unwrap().problem;
        let options = options_for(name);
        let sequential = Synthesizer::with_options(SearchOptions {
            retry_ladder: true,
            ..options.clone()
        })
        .synthesize_report(problem);
        let report = portfolio_report(problem, &options);
        let seq = sequential.outcome.expect("solves");
        let par = report.outcome.expect("solves");
        assert_eq!(par.program.to_string(), seq.program.to_string(), "{name}");
        assert_eq!(par.cost, seq.cost, "{name}");
        assert_eq!(report.attempts.len(), sequential.attempts.len(), "{name}");
        assert_eq!(report.attempts[0].rung, Rung::Full);
        assert!(report.attempts[0].error.is_none());
        assert_eq!(
            counters(&report.stats),
            counters(&sequential.stats),
            "{name}"
        );
    }
}

#[test]
fn portfolio_walks_the_whole_ladder_on_resource_failure() {
    // A 3-pop cap trips the full and degraded rungs; the pop-cap-free
    // baseline rung solves identity — mirroring the sequential ladder
    // test in the synthesizer.
    let problem = Problem::builder("id")
        .param("l", "[int]")
        .returns("[int]")
        .example(&["[1 2]"], "[1 2]")
        .example(&["[]"], "[]")
        .example(&["[3]"], "[3]")
        .build()
        .unwrap();
    let options = SearchOptions {
        max_popped: 3,
        ..SearchOptions::default()
    };
    let sequential = Synthesizer::with_options(SearchOptions {
        retry_ladder: true,
        ..options.clone()
    })
    .synthesize_report(&problem);
    let report = portfolio_report(&problem, &options);

    let rungs: Vec<Rung> = report.attempts.iter().map(|a| a.rung).collect();
    assert_eq!(rungs, vec![Rung::Full, Rung::Degraded, Rung::Baseline]);
    assert_eq!(report.attempts[0].error, Some(SynthError::LimitReached));
    assert_eq!(report.attempts[2].error, None);
    let par = report.outcome.expect("baseline rung solves identity");
    let seq = sequential.outcome.expect("baseline rung solves identity");
    assert_eq!(par.program.to_string(), seq.program.to_string());
    assert_eq!(par.program.body().to_string(), "l");
    assert!(report.frontier.is_empty());
    assert_eq!(
        report.budget.exceeded, sequential.budget.exceeded,
        "the report's budget is the full rung's budget"
    );
}

#[test]
fn portfolio_does_not_retry_semantic_failures() {
    // Inconsistent examples fail every rung identically and are not a
    // resource limit: the race must report a single Full attempt, exactly
    // like the sequential ladder.
    let problem = Problem::builder("bad")
        .param("x", "int")
        .returns("int")
        .example(&["1"], "1")
        .example(&["1"], "2")
        .build()
        .unwrap();
    let report = portfolio_report(&problem, &SearchOptions::default());
    assert_eq!(
        report.outcome.unwrap_err(),
        SynthError::InconsistentExamples
    );
    assert_eq!(report.attempts.len(), 1);
    assert_eq!(report.attempts[0].rung, Rung::Full);
}

#[test]
fn cancelled_losers_never_corrupt_the_winner() {
    // Run the race repeatedly: whatever order the loser rungs finish or
    // get cancelled in, the winner must be bit-for-bit stable and equal
    // to the sequential answer.
    let problem = &by_name("evens").unwrap().problem;
    let options = options_for("evens");
    let sequential = Synthesizer::with_options(options.clone())
        .synthesize_report(problem)
        .outcome
        .expect("solves");
    for round in 0..3 {
        let report = portfolio_report(problem, &options);
        let par = report.outcome.expect("solves");
        assert_eq!(
            par.program.to_string(),
            sequential.program.to_string(),
            "round {round}"
        );
        assert_eq!(par.cost, sequential.cost, "round {round}");
        assert_eq!(par.stats.popped, sequential.stats.popped, "round {round}");
    }
}

/// `--progress` heartbeats under `--portfolio`: the racing rungs run
/// concurrently, but their telemetry is *replayed* into the caller's
/// tracer after the race, in ladder order — so a progress-line renderer
/// (the CLI's `--progress` stderr line) can never interleave heartbeats
/// from different rungs mid-stream, and the beats within each rung stay
/// monotone. Heartbeats are volatile observation: toggling them changes
/// no synthesized result.
#[test]
fn portfolio_progress_heartbeats_replay_in_rung_order() {
    // No total function in the search space maps these inputs to these
    // outputs cheaply, so every rung grinds past several 200ms heartbeat
    // intervals before its deadline.
    let problem = Problem::builder("grind")
        .param("l", "[int]")
        .returns("[int]")
        .example(&["[1 2 3]"], "[999 123 7]")
        .example(&["[4]"], "[5612]")
        .example(&["[9 9]"], "[17 3]")
        .build()
        .unwrap();
    let options = SearchOptions {
        progress: true,
        timeout: Some(Duration::from_millis(700)),
        ..SearchOptions::default()
    };
    let mut tracer = CollectTracer::default();
    let report = portfolio_report_traced(&problem, &options, &mut tracer);
    assert!(report.outcome.is_err(), "grind is inexpressible");

    let beats: Vec<(u64, Duration)> = tracer
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Progress { budget, .. } => Some((budget.pops, budget.elapsed)),
            _ => None,
        })
        .collect();
    assert!(!beats.is_empty(), "no heartbeat from any rung");
    // Replay is Full, then Degraded, then Baseline: the pop counter may
    // reset at most at the two rung boundaries, never inside a rung — a
    // reset mid-rung would mean interleaved (corrupted) heartbeats.
    let resets = beats.windows(2).filter(|w| w[1].0 < w[0].0).count();
    assert!(resets <= 2, "{resets} pop-counter resets in {beats:?}");

    // Heartbeats are pure observation under the portfolio too: same
    // programs, costs, and counters with progress off, on a problem
    // every rung finishes deterministically (no timeout in play).
    let problem = &by_name("evens").unwrap().problem;
    let base = options_for("evens");
    let run = |progress: bool| {
        let mut tracer = CollectTracer::default();
        let options = SearchOptions {
            progress,
            ..base.clone()
        };
        let report = portfolio_report_traced(problem, &options, &mut tracer);
        let heartbeats = tracer
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Progress { .. }));
        (report, heartbeats)
    };
    let (on, _) = run(true);
    let (off, off_beats) = run(false);
    assert!(!off_beats, "progress off must emit no heartbeats");
    let s_on = on.outcome.expect("solves");
    let s_off = off.outcome.expect("solves");
    assert_eq!(s_on.program.to_string(), s_off.program.to_string());
    assert_eq!(s_on.cost, s_off.cost);
    assert_eq!(counters(&on.stats), counters(&off.stats));
}

#[test]
fn a_failing_task_is_isolated_from_the_rest_of_the_batch() {
    // A problem with contradictory examples fails inside its worker; the
    // batch must deliver that failure as a per-task outcome while every
    // other task completes normally. (Worker *panics* are likewise
    // per-item — see the pool's own unit tests — but since problems cross
    // threads as parsed `Problem`s there is no rebuild step left to
    // crash.)
    let mut broken = task_for("ident");
    broken.spec = Problem::builder("ident")
        .param("x", "int")
        .returns("int")
        .example(&["1"], "1")
        .example(&["1"], "2")
        .build()
        .unwrap();
    let tasks = vec![task_for("head"), broken, task_for("tail")];
    let outcomes = synthesize_batch(tasks, 3);
    assert!(outcomes[0].result.as_ref().is_ok_and(|r| r.outcome.is_ok()));
    let report = outcomes[1].result.as_ref().expect("failure, not panic");
    assert_eq!(
        report.outcome.as_ref().unwrap_err(),
        &SynthError::InconsistentExamples
    );
    assert!(outcomes[2].result.as_ref().is_ok_and(|r| r.outcome.is_ok()));
}
