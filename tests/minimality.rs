//! The paper's headline guarantee: the synthesized program is the
//! *simplest* (minimal-cost) program fitting the examples.
//!
//! We cannot enumerate all programs to certify global minimality, but the
//! suite's reference solutions give sound upper bounds: synthesis must
//! never return a program costlier than the reference. (The converse —
//! cheaper than the reference — is fine and does happen, e.g. `shiftl`.)

use std::time::Duration;

use lambda2::suite::by_name;
use lambda2::synth::{CostModel, SearchOptions, Synthesizer};

fn assert_not_costlier_than_reference(name: &str) {
    let bench = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut options = bench.tune(SearchOptions::default());
    options.timeout = Some(Duration::from_secs(60));
    let result = Synthesizer::with_options(options)
        .synthesize(&bench.problem)
        .unwrap_or_else(|e| panic!("{name} failed: {e}"));
    let costs = CostModel::default();
    let reference_cost = costs.cost(bench.reference_program().body());
    assert!(
        result.cost <= reference_cost,
        "{name}: synthesized cost {} exceeds reference cost {} ({} vs {})",
        result.cost,
        reference_cost,
        result.program,
        bench.reference
    );
    // The reported cost is the real cost of the returned program.
    assert_eq!(result.cost, costs.cost(result.program.body()));
}

#[test]
fn minimality_ident() {
    assert_not_costlier_than_reference("ident");
}

#[test]
fn minimality_head() {
    assert_not_costlier_than_reference("head");
}

#[test]
fn minimality_last() {
    assert_not_costlier_than_reference("last");
}

#[test]
fn minimality_length() {
    assert_not_costlier_than_reference("length");
}

#[test]
fn minimality_sum() {
    assert_not_costlier_than_reference("sum");
}

#[test]
fn minimality_reverse() {
    assert_not_costlier_than_reference("reverse");
}

#[test]
fn minimality_incr() {
    assert_not_costlier_than_reference("incr");
}

#[test]
fn minimality_positives() {
    assert_not_costlier_than_reference("positives");
}

#[test]
fn minimality_shiftl() {
    assert_not_costlier_than_reference("shiftl");
}
