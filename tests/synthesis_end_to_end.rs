//! End-to-end synthesis over a fast subset of the benchmark suite.
//!
//! Each test synthesizes a program from the suite's curated examples and
//! then checks the result against *held-out* inputs computed with the
//! benchmark's reference solution — catching both failures to synthesize
//! and overfitted solutions.

use std::time::Duration;

use lambda2::suite::{by_name, generators::example_sweep};
use lambda2::synth::{SearchOptions, Synthesizer};

/// Synthesizes `name` and validates against generated held-out inputs.
fn solve_and_validate(name: &str) {
    let bench = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut options = bench.tune(SearchOptions::default());
    options.timeout = Some(Duration::from_secs(60));
    let result = Synthesizer::with_options(options)
        .synthesize(&bench.problem)
        .unwrap_or_else(|e| panic!("{name} failed to synthesize: {e}"));

    // The synthesized program satisfies the training examples…
    assert!(
        result.program.satisfies_problem(&bench.problem, 100_000),
        "{name}: synthesized program fails its own examples"
    );

    // …is well-typed at the declared signature…
    let inferred = result
        .program
        .infer_type()
        .unwrap_or_else(|e| panic!("{name}: synthesized program is ill-typed: {e}"));
    assert!(
        lambda2::synth::enumerate::unifiable(&inferred, bench.problem.return_type()),
        "{name}: inferred type {} does not fit declared {}",
        inferred,
        bench.problem.return_type()
    );

    // …and agrees with the reference on held-out inputs (single-parameter
    // benchmarks only; multi-parameter ones are checked on training data).
    if let Some(holdout) = example_sweep(&bench, 10, 0xfeed) {
        let reference = bench.reference_program();
        for ex in holdout.examples() {
            let got = result.program.apply(&ex.inputs);
            let want = reference.apply(&ex.inputs);
            assert_eq!(
                got.as_ref().ok(),
                want.as_ref().ok(),
                "{name} overfits: on {} got {:?}, reference says {:?}",
                ex.inputs[0],
                got,
                want
            );
        }
    }
}

#[test]
fn synthesizes_ident() {
    solve_and_validate("ident");
}

#[test]
fn synthesizes_head() {
    solve_and_validate("head");
}

#[test]
fn synthesizes_tail() {
    solve_and_validate("tail");
}

#[test]
fn synthesizes_last() {
    solve_and_validate("last");
}

#[test]
fn synthesizes_length() {
    solve_and_validate("length");
}

#[test]
fn synthesizes_sum() {
    solve_and_validate("sum");
}

#[test]
fn synthesizes_incr() {
    solve_and_validate("incr");
}

#[test]
fn synthesizes_square() {
    solve_and_validate("square");
}

#[test]
fn synthesizes_multfirst() {
    solve_and_validate("multfirst");
}

#[test]
fn synthesizes_reverse() {
    solve_and_validate("reverse");
}

#[test]
fn synthesizes_positives() {
    solve_and_validate("positives");
}

#[test]
fn synthesizes_shiftl() {
    solve_and_validate("shiftl");
}

#[test]
fn synthesizes_append_without_cat() {
    solve_and_validate("append");
}

#[test]
fn synthesizes_concat() {
    solve_and_validate("concat");
}

#[test]
fn synthesizes_incrt() {
    solve_and_validate("incrt");
}

#[test]
fn synthesizes_multi_parameter_add() {
    solve_and_validate("add");
}
