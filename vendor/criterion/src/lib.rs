//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of the criterion 0.5 API its benches use, backed by a plain
//! wall-clock harness. Semantics mirror criterion where it matters:
//!
//! * under `cargo bench` (cargo passes `--bench`) each benchmark is
//!   measured over `sample_size` samples within `measurement_time`, and a
//!   min/median/mean summary is printed;
//! * under `cargo test` (no `--bench` flag) each benchmark body runs
//!   exactly once, as a smoke test.
//!
//! No statistics beyond the summary line; no plotting; no baselines.

#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for parity with criterion.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Harness entry point handed to benchmark functions.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench invokes the target with `--bench`; cargo test does
        // not. Criterion proper keys "test mode" off the same flag.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let bench_mode = self.bench_mode;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            bench_mode,
            sample_size: 100,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mode = self.bench_mode;
        let mut g = self.benchmark_group("");
        g.bench_mode = mode;
        g.bench_function(name, f);
        g.finish();
    }
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: &str, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    bench_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget for one benchmark's measurement.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, |b| f(b));
    }

    /// Ends the group (provided for API parity; nothing to flush).
    pub fn finish(self) {}

    fn run<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            name.to_owned()
        } else {
            format!("{}/{name}", self.name)
        };
        let mut bencher = Bencher {
            bench_mode: self.bench_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if !self.bench_mode {
            println!("test {label} ... ok (smoke, 1 iteration)");
            return;
        }
        let mut s = bencher.samples;
        if s.is_empty() {
            println!("{label}: no samples recorded");
            return;
        }
        s.sort_unstable();
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<Duration>() / s.len() as u32;
        println!(
            "{label}: min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            s.len()
        );
    }
}

/// Timing callback passed to each benchmark body.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `f`, recording per-iteration wall time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if !self.bench_mode {
            hint_black_box(f());
            return;
        }
        // Warm-up and per-iteration estimate.
        let warm = Instant::now();
        hint_black_box(f());
        let mut est = warm.elapsed().max(Duration::from_nanos(50));
        if est < Duration::from_millis(1) {
            // Refine the estimate for very fast bodies.
            let n = 64u32;
            let t = Instant::now();
            for _ in 0..n {
                hint_black_box(f());
            }
            est = (t.elapsed() / n).max(Duration::from_nanos(10));
        }
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / est.as_nanos().max(1)).clamp(1, 1 << 24) as u32;
        let deadline = Instant::now() + self.measurement_time.mul_f64(1.5);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                hint_black_box(f());
            }
            self.samples.push(t.elapsed() / iters);
            if Instant::now() > deadline {
                break; // keep hard benches within ~1.5x the budget
            }
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_bodies_once() {
        let mut c = Criterion { bench_mode: false };
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut c = Criterion { bench_mode: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(5).measurement_time(Duration::from_millis(20));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(10).id, "10");
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
    }
}
