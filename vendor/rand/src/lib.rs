//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the (tiny) slice of the `rand` 0.8 API it actually uses: seedable
//! deterministic generators and uniform range sampling. The generator is
//! xoshiro256** seeded through SplitMix64 — statistically solid for
//! workload generation, deterministic across platforms, and dependency-free.
//!
//! Not a cryptographic RNG; never use for secrets.

#![warn(missing_docs)]

/// Generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl StdRng {
    /// The next raw 64-bit output (xoshiro256**).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types a [`Rng`] can sample uniformly from a range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive(rng: &mut StdRng, low: Self, high: Self) -> Self;
}

/// Uniform `u64` in `[0, span]` via Lemire-style rejection (debiased).
fn uniform_u64(rng: &mut StdRng, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1;
    // Rejection zone keeping the multiply-shift map exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let m = (v as u128) * (bound as u128);
            ((m >> 64) as u64, m as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

impl SampleUniform for i64 {
    fn sample_inclusive(rng: &mut StdRng, low: Self, high: Self) -> Self {
        let span = high.wrapping_sub(low) as u64;
        low.wrapping_add(uniform_u64(rng, span) as i64)
    }
}

impl SampleUniform for u64 {
    fn sample_inclusive(rng: &mut StdRng, low: Self, high: Self) -> Self {
        low + uniform_u64(rng, high - low)
    }
}

impl SampleUniform for usize {
    fn sample_inclusive(rng: &mut StdRng, low: Self, high: Self) -> Self {
        low + uniform_u64(rng, (high - low) as u64) as usize
    }
}

impl SampleUniform for u32 {
    fn sample_inclusive(rng: &mut StdRng, low: Self, high: Self) -> Self {
        low + uniform_u64(rng, (high - low) as u64) as u32
    }
}

/// Range arguments accepted by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform + PartialOrd + One> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range called with an empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Internal helper to turn an exclusive upper bound into an inclusive one.
pub trait One: Sized {
    /// `self - 1`.
    fn minus_one(self) -> Self;
}

impl One for i64 {
    fn minus_one(self) -> Self {
        self - 1
    }
}
impl One for u64 {
    fn minus_one(self) -> Self {
        self - 1
    }
}
impl One for usize {
    fn minus_one(self) -> Self {
        self - 1
    }
}
impl One for u32 {
    fn minus_one(self) -> Self {
        self - 1
    }
}

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>;

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random bits -> uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5..10);
            assert!((-5..10).contains(&v));
            let u: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 15];
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5..10);
            seen[(v + 5) as usize] = true;
        }
        assert!(
            seen.iter().all(|s| *s),
            "some values never sampled: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_ranges_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: i64 = rng.gen_range(5..5);
    }
}
